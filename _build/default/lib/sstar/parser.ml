(* Recursive-descent parser for S*. *)

module Diag = Msl_util.Diag

type t = { lx : Lexer.t }

let err p fmt = Diag.error ~loc:(Lexer.loc p.lx) Diag.Parsing fmt

let peek p = Lexer.token p.lx
let loc p = Lexer.loc p.lx
let advance p = Lexer.advance p.lx

let expect p tok =
  if peek p = tok then advance p
  else
    err p "expected %s, found %s" (Lexer.token_name tok)
      (Lexer.token_name (peek p))

let eat p tok =
  if peek p = tok then begin
    advance p;
    true
  end
  else false

let ident p =
  match peek p with
  | Lexer.Ident s ->
      advance p;
      s
  | t -> err p "expected identifier, found %s" (Lexer.token_name t)

let number p =
  let neg = eat p Lexer.Minus in
  match peek p with
  | Lexer.Number n ->
      advance p;
      if neg then Int64.neg n else n
  | t -> err p "expected number, found %s" (Lexer.token_name t)

let int_ p = Int64.to_int (number p)

(* -- types and declarations ------------------------------------------------- *)

(* seq [hi..lo] bit *)
let seq_type p =
  expect p (Lexer.Kw "seq");
  expect p Lexer.Lbrack;
  let hi = int_ p in
  expect p Lexer.DotDot;
  let lo = int_ p in
  expect p Lexer.Rbrack;
  (* "of bit" or plain "bit" *)
  ignore (eat p (Lexer.Kw "of"));
  expect p (Lexer.Kw "bit");
  (hi, lo)

let rec dtype p : Ast.dtype =
  match peek p with
  | Lexer.Kw "seq" ->
      let hi, lo = seq_type p in
      Ast.Tseq (hi, lo)
  | Lexer.Kw "array" ->
      advance p;
      expect p Lexer.Lbrack;
      let lo = int_ p in
      expect p Lexer.DotDot;
      let hi = int_ p in
      expect p Lexer.Rbrack;
      expect p (Lexer.Kw "of");
      Ast.Tarray (lo, hi, dtype p)
  | Lexer.Kw "tuple" ->
      advance p;
      let rec fields acc =
        match peek p with
        | Lexer.Kw "end" ->
            advance p;
            List.rev acc
        | _ ->
            let name = ident p in
            expect p Lexer.Colon;
            let hi, lo = seq_type p in
            ignore (eat p Lexer.Semi);
            fields ((name, hi, lo) :: acc)
      in
      Ast.Ttuple (fields [])
  | Lexer.Kw "stack" ->
      advance p;
      expect p Lexer.Lbrack;
      let depth = int_ p in
      expect p Lexer.Rbrack;
      expect p (Lexer.Kw "of");
      Ast.Tstack (depth, dtype p)
  | t -> err p "expected a type, found %s" (Lexer.token_name t)

(* at R4 | at R4[3..0] | at regs R1, R2, R3 | at mem 400 *)
let binding p : Ast.binding =
  expect p (Lexer.Kw "at");
  match peek p with
  | Lexer.Kw "regs" ->
      advance p;
      let rec more acc =
        if eat p Lexer.Comma then more (ident p :: acc) else List.rev acc
      in
      Ast.Bregs (more [ ident p ])
  | Lexer.Kw "mem" ->
      advance p;
      Ast.Bmem (int_ p)
  | Lexer.Ident _ ->
      let r = ident p in
      if eat p Lexer.Lbrack then begin
        let hi = int_ p in
        expect p Lexer.DotDot;
        let lo = int_ p in
        expect p Lexer.Rbrack;
        Ast.Bregfield (r, hi, lo)
      end
      else Ast.Breg r
  | t -> err p "expected a binding, found %s" (Lexer.token_name t)

(* -- references, operands, expressions --------------------------------------- *)

let ref_ p : Ast.ref_ =
  let name = ident p in
  if eat p Lexer.Lbrack then begin
    let idx =
      match peek p with
      | Lexer.Number _ -> Ast.Iconst (int_ p)
      | Lexer.Ident _ -> Ast.Ivar (ident p)
      | t -> err p "expected index, found %s" (Lexer.token_name t)
    in
    expect p Lexer.Rbrack;
    Ast.Rindex (name, idx)
  end
  else if eat p Lexer.Dot then Ast.Rfield (name, ident p)
  else Ast.Rname name

let operand p : Ast.operand =
  match peek p with
  | Lexer.Number _ | Lexer.Minus -> Ast.Onum (number p)
  | Lexer.Ident _ -> Ast.Oref (ref_ p)
  | t -> err p "expected operand, found %s" (Lexer.token_name t)

let binop_of_token = function
  | Lexer.Plus -> Some Ast.Sadd
  | Lexer.Minus -> Some Ast.Ssub
  | Lexer.Amp -> Some Ast.Sand
  | Lexer.Bar -> Some Ast.Sor
  | Lexer.Star -> Some Ast.Smul
  | _ -> None

let expr p : Ast.expr =
  if eat p Lexer.Tilde then Ast.Enot (operand p)
  else begin
    let a = operand p in
    match peek p with
    | Lexer.Caret ->
        advance p;
        Ast.Eshift (a, Int64.to_int (number p))
    | Lexer.Caret2 ->
        advance p;
        Ast.Erotate (a, Int64.to_int (number p))
    | Lexer.Ident "xor" ->
        advance p;
        Ast.Ebin (Ast.Sxor, a, operand p)
    | t -> (
        match binop_of_token t with
        | Some op ->
            advance p;
            Ast.Ebin (op, a, operand p)
        | None -> Ast.Eop a)
  end

let flag_names = [ "UF"; "CF"; "ZF"; "NF"; "VF"; "CARRY"; "ZERO"; "OVERFLOW" ]

let test p : Ast.test =
  if eat p Lexer.Bang then begin
    let f = ident p in
    if not (List.mem (String.uppercase_ascii f) flag_names) then
      err p "unknown flag %S" f;
    Ast.Tflag (String.uppercase_ascii f, false)
  end
  else begin
    let r = ref_ p in
    match (r, peek p) with
    | _, Lexer.Eq ->
        advance p;
        if number p <> 0L then err p "tests compare with 0 only";
        Ast.Tzero r
    | _, Lexer.Ne ->
        advance p;
        if number p <> 0L then err p "tests compare with 0 only";
        Ast.Tnonzero r
    | Ast.Rname f, _ when List.mem (String.uppercase_ascii f) flag_names ->
        Ast.Tflag (String.uppercase_ascii f, true)
    | _, t -> err p "expected '= 0', '<> 0' or a flag, found %s" (Lexer.token_name t)
  end

(* -- formulas ------------------------------------------------------------------ *)

(* fexpr with conventional precedence: * over + - over & | xor; shifts as
   postfix '^ n'. *)
let rec fexpr p : Ast.fexpr =
  let a = fsum p in
  let rec tail a =
    match peek p with
    | Lexer.Amp ->
        advance p;
        tail (Ast.Fbin (Ast.Sand, a, fsum p))
    | Lexer.Bar ->
        advance p;
        tail (Ast.Fbin (Ast.Sor, a, fsum p))
    | Lexer.Ident "xor" ->
        advance p;
        tail (Ast.Fbin (Ast.Sxor, a, fsum p))
    | _ -> a
  in
  tail a

and fsum p =
  let a = fterm p in
  let rec tail a =
    match peek p with
    | Lexer.Plus ->
        advance p;
        tail (Ast.Fbin (Ast.Sadd, a, fterm p))
    | Lexer.Minus ->
        advance p;
        tail (Ast.Fbin (Ast.Ssub, a, fterm p))
    | _ -> a
  in
  tail a

and fterm p =
  let a = fatom p in
  let rec tail a =
    match peek p with
    | Lexer.Star ->
        advance p;
        tail (Ast.Fmul (a, fatom p))
    | Lexer.Caret ->
        advance p;
        let n = Int64.to_int (number p) in
        tail (if n >= 0 then Ast.Fshl (a, n) else Ast.Fshr (a, -n))
    | _ -> a
  in
  tail a

and fatom p =
  match peek p with
  | Lexer.Number _ | Lexer.Minus -> Ast.Fnum (number p)
  | Lexer.Tilde ->
      advance p;
      Ast.Fnotb (fatom p)
  | Lexer.Lparen ->
      advance p;
      let e = fexpr p in
      expect p Lexer.Rparen;
      e
  | Lexer.Ident _ -> Ast.Fref (ref_ p)
  | t -> err p "expected formula operand, found %s" (Lexer.token_name t)

let frel p =
  match peek p with
  | Lexer.Eq -> advance p; Ast.FReq
  | Lexer.Ne -> advance p; Ast.FRne
  | Lexer.Lt -> advance p; Ast.FRlt
  | Lexer.Le -> advance p; Ast.FRle
  | Lexer.Gt -> advance p; Ast.FRgt
  | Lexer.Ge -> advance p; Ast.FRge
  | t -> err p "expected relation, found %s" (Lexer.token_name t)

let rec formula p : Ast.formula =
  let a = fdisj p in
  if eat p Lexer.Imp then Ast.Fimp (a, formula p) else a

and fdisj p =
  let a = fconj p in
  let rec tail a =
    if eat p (Lexer.Kw "or") then tail (Ast.For (a, fconj p)) else a
  in
  tail a

and fconj p =
  let a = fprim p in
  let rec tail a =
    if eat p (Lexer.Kw "and") then tail (Ast.Fand (a, fprim p)) else a
  in
  tail a

and fprim p =
  match peek p with
  | Lexer.Kw "true" -> advance p; Ast.Ftrue
  | Lexer.Kw "false" -> advance p; Ast.Ffalse
  | Lexer.Kw "not" ->
      advance p;
      Ast.Fnot (fprim p)
  | Lexer.Lparen ->
      (* could be a parenthesised formula or a parenthesised fexpr in a
         relation; parse as formula if it closes into a connective,
         otherwise fall back.  We keep it simple: a '(' here always opens
         a sub-formula. *)
      advance p;
      let f = formula p in
      expect p Lexer.Rparen;
      f
  | _ ->
      let a = fexpr p in
      let r = frel p in
      let b = fexpr p in
      Ast.Frel (r, a, b)

let braced_formula p =
  expect p Lexer.Lbrace;
  let f = formula p in
  expect p Lexer.Rbrace;
  f

(* -- statements ------------------------------------------------------------------ *)

let rec stmt p : Ast.stmt =
  let l = loc p in
  match peek p with
  | Lexer.Kw "begin" ->
      advance p;
      Ast.Sseq (stmts_until p [ Lexer.Kw "end" ])
  | Lexer.Kw "cobegin" ->
      advance p;
      Ast.Scobegin (stmts_until p [ Lexer.Kw "coend" ], l)
  | Lexer.Kw "cocycle" ->
      advance p;
      Ast.Scocycle (stmts_until p [ Lexer.Kw "coend"; Lexer.Kw "end" ], l)
  | Lexer.Kw "region" ->
      advance p;
      Ast.Sregion (stmts_until p [ Lexer.Kw "end" ], l)
  | Lexer.Kw "dur" ->
      advance p;
      let s0 = stmt p in
      expect p (Lexer.Kw "do");
      Ast.Sdur (s0, stmts_until p [ Lexer.Kw "end" ], l)
  | Lexer.Kw "if" ->
      advance p;
      let rec arms acc =
        let t = test p in
        expect p (Lexer.Kw "then");
        let body = stmts_until_any p in
        let acc = (t, body) :: acc in
        match peek p with
        | Lexer.Kw "elif" ->
            advance p;
            arms acc
        | Lexer.Kw "else" ->
            advance p;
            let e = stmts_until p [ Lexer.Kw "fi" ] in
            Ast.Sif (List.rev acc, Some e, l)
        | Lexer.Kw "fi" ->
            advance p;
            Ast.Sif (List.rev acc, None, l)
        | t2 -> err p "expected elif/else/fi, found %s" (Lexer.token_name t2)
      in
      arms []
  | Lexer.Kw "while" ->
      advance p;
      let t = test p in
      let inv =
        if eat p (Lexer.Kw "inv") then Some (braced_formula p) else None
      in
      expect p (Lexer.Kw "do");
      Ast.Swhile (t, inv, stmts_until p [ Lexer.Kw "od" ], l)
  | Lexer.Kw "repeat" ->
      advance p;
      let body = stmts_until p [ Lexer.Kw "until" ] in
      let t = test p in
      let inv =
        if eat p (Lexer.Kw "inv") then Some (braced_formula p) else None
      in
      Ast.Srepeat (body, t, inv, l)
  | Lexer.Kw "call" ->
      advance p;
      Ast.Scall (ident p, l)
  | Lexer.Kw "return" ->
      advance p;
      Ast.Sreturn l
  | Lexer.Kw "push" ->
      advance p;
      expect p Lexer.Lparen;
      let s = ident p in
      expect p Lexer.Comma;
      let v = operand p in
      expect p Lexer.Rparen;
      Ast.Spush (s, v, l)
  | Lexer.Kw "pop" ->
      advance p;
      expect p Lexer.Lparen;
      let s = ident p in
      expect p Lexer.Comma;
      let r = ref_ p in
      expect p Lexer.Rparen;
      Ast.Spop (s, r, l)
  | Lexer.Kw "assert" ->
      advance p;
      Ast.Sassert (braced_formula p, l)
  | Lexer.Ident _ ->
      let r = ref_ p in
      expect p Lexer.Assign;
      Ast.Sassign (r, expr p, l)
  | t -> err p "expected a statement, found %s" (Lexer.token_name t)

(* statements separated by ';', ending at one of [terminators] (consumed) *)
and stmts_until p terminators =
  let rec more acc =
    if List.mem (peek p) terminators then begin
      advance p;
      List.rev acc
    end
    else begin
      let s = stmt p in
      ignore (eat p Lexer.Semi);
      more (s :: acc)
    end
  in
  more []

(* statements ending at elif/else/fi without consuming the terminator *)
and stmts_until_any p =
  let stop () =
    match peek p with
    | Lexer.Kw ("elif" | "else" | "fi") -> true
    | _ -> false
  in
  let rec more acc =
    if stop () then List.rev acc
    else begin
      let s = stmt p in
      ignore (eat p Lexer.Semi);
      more (s :: acc)
    end
  in
  more []

(* -- program ---------------------------------------------------------------------- *)

(* const minus1 = dec (64) -1 at R8; *)
let const_decl p : Ast.const_decl =
  let c_loc = loc p in
  let c_name = ident p in
  expect p Lexer.Eq;
  let base =
    match peek p with
    | Lexer.Kw "dec" -> advance p; `Dec
    | Lexer.Kw "hex" -> advance p; `Hex
    | Lexer.Kw "bin" -> advance p; `Bin
    | t -> err p "expected dec/hex/bin, found %s" (Lexer.token_name t)
  in
  ignore base;  (* the lexer already parses radix-prefixed literals *)
  expect p Lexer.Lparen;
  let c_width = int_ p in
  expect p Lexer.Rparen;
  let c_value = number p in
  expect p (Lexer.Kw "at");
  let c_reg = ident p in
  ignore (eat p Lexer.Semi);
  { Ast.c_name; c_width; c_value; c_reg; c_loc }

let var_decl p : Ast.var_decl =
  let v_loc = loc p in
  let v_name = ident p in
  expect p Lexer.Colon;
  let v_type = dtype p in
  let v_ptr =
    if eat p (Lexer.Kw "with") then Some (ident p) else None
  in
  let v_binding = binding p in
  ignore (eat p Lexer.Semi);
  { Ast.v_name; v_type; v_binding; v_ptr; v_loc }

let syn_decls p : Ast.syn_decl list =
  let one () =
    let s_loc = loc p in
    let s_name = ident p in
    expect p Lexer.Eq;
    let s_base = ident p in
    let s_index =
      if eat p Lexer.Lbrack then begin
        let i = int_ p in
        expect p Lexer.Rbrack;
        Some i
      end
      else None
    in
    { Ast.s_name; s_base; s_index; s_loc }
  in
  let rec more acc =
    if eat p Lexer.Comma then more (one () :: acc) else List.rev acc
  in
  let decls = more [ one () ] in
  ignore (eat p Lexer.Semi);
  decls

let parse ?(file = "<sstar>") src : Ast.program =
  let p = { lx = Lexer.make ~file src } in
  expect p (Lexer.Kw "program");
  let sp_name = ident p in
  ignore (eat p Lexer.Semi);
  let vars = ref [] and consts = ref [] and syns = ref [] in
  let pre = ref None and post = ref None and procs = ref [] in
  let rec decls () =
    match peek p with
    | Lexer.Kw "var" ->
        advance p;
        vars := var_decl p :: !vars;
        decls ()
    | Lexer.Kw "const" ->
        advance p;
        consts := const_decl p :: !consts;
        decls ()
    | Lexer.Kw "syn" ->
        advance p;
        syns := !syns @ syn_decls p;
        decls ()
    | Lexer.Kw "pre" ->
        advance p;
        pre := Some (braced_formula p);
        ignore (eat p Lexer.Semi);
        decls ()
    | Lexer.Kw "post" ->
        advance p;
        post := Some (braced_formula p);
        ignore (eat p Lexer.Semi);
        decls ()
    | Lexer.Kw "proc" ->
        advance p;
        let pp_name = ident p in
        let pp_uses =
          if eat p Lexer.Lparen then begin
            ignore (eat p (Lexer.Kw "uses"));
            let rec more acc =
              if eat p Lexer.Comma then more (ident p :: acc) else List.rev acc
            in
            let us = more [ ident p ] in
            expect p Lexer.Rparen;
            us
          end
          else []
        in
        ignore (eat p Lexer.Semi);
        expect p (Lexer.Kw "begin");
        let pp_body = stmts_until p [ Lexer.Kw "end" ] in
        ignore (eat p Lexer.Semi);
        procs := { Ast.pp_name; pp_uses; pp_body } :: !procs;
        decls ()
    | _ -> ()
  in
  decls ();
  expect p (Lexer.Kw "begin");
  let body = stmts_until p [ Lexer.Kw "end" ] in
  {
    Ast.sp_name;
    vars = List.rev !vars;
    consts = List.rev !consts;
    syns = !syns;
    pre = !pre;
    post = !post;
    procs = List.rev !procs;
    body;
  }
