(** Bounded Hoare-logic verification of S* programs (the survey's §2.2.3
    correctness story; Strum's verifier, §2.2.5).

    Weakest preconditions are computed backward through straight-line
    code, if/elif/else, cobegin (simultaneous substitution), cocycle and
    dur (sequential), with loops requiring [inv { ... }] annotations and
    [assert { ... }] acting as cut points.  Verification conditions are
    discharged over *machine arithmetic* — fixed-width wrapping
    bitvectors, exactly the instantiated semantics under which the survey
    modifies the INC rule for overflow — exhaustively up to 18 free bits,
    by corner-plus-random sampling beyond.

    Unsupported constructs (flag tests, stacks, calls, run-time-indexed
    arrays) are reported in [failure], never silently skipped. *)

type status =
  | Proved  (** exhaustively checked *)
  | Refuted of (Compile.storage * Msl_bitvec.Bitvec.t) list
      (** counterexample assignment *)
  | Sampled of int  (** held on this many sampled states *)

type report = {
  results : (string * status) list;  (** per verification condition *)
  proved : int;
  sampled : int;
  refuted : int;
  failure : string option;  (** unsupported-construct message, if any *)
}

val verify : Msl_machine.Desc.t -> Ast.program -> report

val ok : report -> bool
(** No failure and nothing refuted. *)

val pp_status : Format.formatter -> status -> unit
val pp_report : Format.formatter -> report -> unit
