lib/sstar/ast.ml: Msl_util
