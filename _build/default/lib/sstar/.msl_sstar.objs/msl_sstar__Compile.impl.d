lib/sstar/compile.ml: Ast Bitvec Conflict Desc Hashtbl Inst Int64 List Msl_bitvec Msl_machine Msl_mir Msl_util Parser Pipeline Printf Rtl Select Sim String
