lib/sstar/lexer.ml: Int64 List Msl_util Printf String
