lib/sstar/parser.mli: Ast
