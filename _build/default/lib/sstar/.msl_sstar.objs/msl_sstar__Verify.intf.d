lib/sstar/verify.mli: Ast Compile Format Msl_bitvec Msl_machine
