lib/sstar/verify.ml: Ast Bitvec Compile Desc Fmt Format Int64 List Msl_bitvec Msl_machine Msl_util Printf Random
