(* Tokeniser for S*.  Comments are '#...#' as in the survey's listing
   ("# a 16-bit constant with decimal value -1 #") and '--' to end of
   line for convenience. *)

module Diag = Msl_util.Diag
module Loc = Msl_util.Loc
module Scanner = Msl_util.Scanner

type token =
  | Ident of string
  | Number of int64
  | Kw of string
  | Assign  (* := *)
  | Semi | Comma | Colon | Dot | DotDot
  | Lparen | Rparen | Lbrack | Rbrack | Lbrace | Rbrace
  | Eq | Ne | Lt | Le | Gt | Ge
  | Plus | Minus | Amp | Bar | Hash | Tilde | Star
  | Caret | Caret2
  | Bang  (* '!' flag negation *)
  | Imp  (* => *)
  | Eof

let keywords =
  [ "program"; "var"; "const"; "syn"; "at"; "regs"; "mem"; "ptr"; "of";
    "bit"; "seq"; "array"; "tuple"; "stack"; "with"; "begin"; "end";
    "cobegin"; "coend"; "cocycle"; "dur"; "do"; "region"; "if"; "then";
    "elif"; "else"; "fi"; "while"; "od"; "repeat"; "until"; "inv"; "call";
    "return"; "proc"; "uses"; "push"; "pop"; "assert"; "pre"; "post";
    "and"; "or"; "not"; "true"; "false"; "dec"; "hex"; "bin" ]

type t = { sc : Scanner.t; mutable tok : token; mutable tok_loc : Loc.t }

let err lx fmt = Diag.error ~loc:(Scanner.here lx.sc) Diag.Lexing fmt

let rec skip_trivia lx =
  let sc = lx.sc in
  Scanner.skip_spaces sc;
  match Scanner.peek sc with
  | Some '#' ->
      Scanner.advance sc;
      let rec loop () =
        match Scanner.next sc with
        | None -> err lx "unterminated '#' comment"
        | Some '#' -> ()
        | Some _ -> loop ()
      in
      loop ();
      skip_trivia lx
  | Some '-' when Scanner.peek2 sc = Some '-' ->
      let _ : string = Scanner.take_while sc (fun c -> c <> '\n') in
      skip_trivia lx
  | Some _ | None -> ()

let scan lx =
  let sc = lx.sc in
  skip_trivia lx;
  let start = Scanner.pos sc in
  let fin tok =
    lx.tok <- tok;
    lx.tok_loc <- Scanner.loc_from sc start
  in
  match Scanner.peek sc with
  | None -> fin Eof
  | Some c when Scanner.is_ident_start c ->
      let word = Scanner.ident sc in
      let lower = String.lowercase_ascii word in
      if List.mem lower keywords then fin (Kw lower) else fin (Ident word)
  | Some c when Scanner.is_digit c ->
      let s = Scanner.take_while sc Scanner.is_alnum in
      let v =
        try Int64.of_string s with Failure _ -> err lx "malformed number %S" s
      in
      fin (Number v)
  | Some ':' ->
      Scanner.advance sc;
      if Scanner.eat sc '=' then fin Assign else fin Colon
  | Some ';' -> Scanner.advance sc; fin Semi
  | Some ',' -> Scanner.advance sc; fin Comma
  | Some '.' ->
      Scanner.advance sc;
      if Scanner.eat sc '.' then fin DotDot else fin Dot
  | Some '(' -> Scanner.advance sc; fin Lparen
  | Some ')' -> Scanner.advance sc; fin Rparen
  | Some '[' -> Scanner.advance sc; fin Lbrack
  | Some ']' -> Scanner.advance sc; fin Rbrack
  | Some '{' -> Scanner.advance sc; fin Lbrace
  | Some '}' -> Scanner.advance sc; fin Rbrace
  | Some '=' ->
      Scanner.advance sc;
      if Scanner.eat sc '>' then fin Imp else fin Eq
  | Some '<' ->
      Scanner.advance sc;
      if Scanner.eat sc '>' then fin Ne
      else if Scanner.eat sc '=' then fin Le
      else fin Lt
  | Some '>' ->
      Scanner.advance sc;
      if Scanner.eat sc '=' then fin Ge else fin Gt
  | Some '+' -> Scanner.advance sc; fin Plus
  | Some '-' -> Scanner.advance sc; fin Minus
  | Some '&' -> Scanner.advance sc; fin Amp
  | Some '|' -> Scanner.advance sc; fin Bar
  | Some '*' -> Scanner.advance sc; fin Star
  | Some '~' -> Scanner.advance sc; fin Tilde
  | Some '!' -> Scanner.advance sc; fin Bang
  | Some '^' ->
      Scanner.advance sc;
      if Scanner.eat sc '^' then fin Caret2 else fin Caret
  | Some c -> err lx "unexpected character '%c'" c

(* '#' doubles as the xor operator inside expressions; the comment rule
   above would eat it.  S(M) programs therefore spell xor as 'xor'?  No:
   S* uses '#' only for comments; xor is the keyword-free token below. *)
let _ = Hash

let make ?(file = "<sstar>") src =
  let lx = { sc = Scanner.make ~file src; tok = Eof; tok_loc = Loc.dummy } in
  scan lx;
  lx

let token lx = lx.tok
let loc lx = lx.tok_loc
let advance lx = scan lx

let token_name = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Number n -> Printf.sprintf "number %Ld" n
  | Kw k -> Printf.sprintf "keyword %S" k
  | Assign -> "':='"
  | Semi -> "';'"
  | Comma -> "','"
  | Colon -> "':'"
  | Dot -> "'.'"
  | DotDot -> "'..'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Lbrack -> "'['"
  | Rbrack -> "']'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Eq -> "'='"
  | Ne -> "'<>'"
  | Lt -> "'<'"
  | Le -> "'<='"
  | Gt -> "'>'"
  | Ge -> "'>='"
  | Plus -> "'+'"
  | Minus -> "'-'"
  | Amp -> "'&'"
  | Bar -> "'|'"
  | Hash -> "'#'"
  | Tilde -> "'~'"
  | Star -> "'*'"
  | Caret -> "'^'"
  | Caret2 -> "'^^'"
  | Bang -> "'!'"
  | Imp -> "'=>'"
  | Eof -> "end of input"
