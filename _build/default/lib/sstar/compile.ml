(* S* instantiation and code generation.

   Instantiating S* against a machine description yields S(M): every data
   object is resolved to machine storage, every elementary statement to a
   machine microoperation, and every test to a machine-testable condition.
   Anything the machine cannot do directly is an *instantiation error* —
   S* deliberately refuses to hide the machine (survey §2.2.3: "the
   programmer must have intimate knowledge of the specific machine").

   Parallelism is explicit: [cobegin] packs its arms into one
   microinstruction, [cocycle] assigns them to successive phases, [dur]
   overlaps a long operation with a sequence, and compaction is never run
   — the programmer composed the microinstructions.  The DeWitt conflict
   model still checks every composed word, so an impossible composition is
   rejected exactly as the hardware would reject it. *)

open Msl_bitvec
open Msl_machine
open Msl_mir
module Diag = Msl_util.Diag
module Loc = Msl_util.Loc

type storage =
  | Sreg of int
  | Sregfield of int * int * int  (* register, hi, lo *)
  | Smem of int  (* constant address *)
  | Smem_dyn of int * int  (* base + index register *)

type obj =
  | Oseq of storage * int  (* storage, width *)
  | Oarray of { lo : int; hi : int; ew : int; cells : arr_cells }
  | Otuple of { reg : int; fields : (string * int * int) list }
  | Ostack of { base : int; depth : int; ew : int; ptr : int }
  | Oconst of { reg : int; width : int; value : Bitvec.t }

and arr_cells = Aregs of int list | Amem of int

type env = {
  d : Desc.t;
  ctx : Select.ctx;
  objs : (string, obj) Hashtbl.t;
  move_templates : Desc.template list;  (* S_move, ascending phase *)
}

let canon = String.lowercase_ascii

let err ?(loc = Loc.dummy) fmt = Diag.error ~loc Diag.Instantiation fmt

let machine_reg env loc name =
  let target = canon name in
  match
    List.find_opt (fun r -> canon r.Desc.r_name = target) (Desc.regs env.d)
  with
  | Some r -> r.Desc.r_id
  | None -> err ~loc "machine %s has no register %S" env.d.Desc.d_name name

let width_of_type loc = function
  | Ast.Tseq (hi, lo) -> hi - lo + 1
  | Ast.Tarray _ | Ast.Ttuple _ | Ast.Tstack _ ->
      Diag.error ~loc Diag.Instantiation "expected a seq type here"

(* -- declaration processing --------------------------------------------------- *)

let declare_var env (v : Ast.var_decl) =
  let loc = v.Ast.v_loc in
  let obj =
    match (v.Ast.v_type, v.Ast.v_binding) with
    | Ast.Tseq (hi, lo), Ast.Breg r -> Oseq (Sreg (machine_reg env loc r), hi - lo + 1)
    | Ast.Tseq (hi, lo), Ast.Bregfield (r, bhi, blo) ->
        if bhi - blo <> hi - lo then
          err ~loc "field binding width mismatch for %S" v.Ast.v_name;
        Oseq (Sregfield (machine_reg env loc r, bhi, blo), hi - lo + 1)
    | Ast.Tseq (hi, lo), Ast.Bmem a -> Oseq (Smem a, hi - lo + 1)
    | Ast.Tarray (lo_i, hi_i, elem), Ast.Bregs regs ->
        let n = hi_i - lo_i + 1 in
        if List.length regs <> n then
          err ~loc "array %S needs %d registers, got %d" v.Ast.v_name n
            (List.length regs);
        Oarray
          {
            lo = lo_i;
            hi = hi_i;
            ew = width_of_type loc elem;
            cells = Aregs (List.map (machine_reg env loc) regs);
          }
    | Ast.Tarray (lo_i, hi_i, elem), Ast.Bmem a ->
        Oarray
          { lo = lo_i; hi = hi_i; ew = width_of_type loc elem; cells = Amem a }
    | Ast.Ttuple fields, Ast.Breg r ->
        Otuple { reg = machine_reg env loc r; fields }
    | Ast.Tstack (depth, elem), Ast.Bmem a -> (
        match v.Ast.v_ptr with
        | None -> err ~loc "stack %S needs a pointer: with <var>" v.Ast.v_name
        | Some ptr -> (
            match Hashtbl.find_opt env.objs (canon ptr) with
            | Some (Oseq (Sreg p, _)) ->
                Ostack { base = a; depth; ew = width_of_type loc elem; ptr = p }
            | Some _ ->
                err ~loc "stack pointer %S must be a register-bound seq" ptr
            | None ->
                err ~loc "stack pointer %S must be declared before the stack"
                  ptr))
    | _, _ ->
        err ~loc "unsupported binding for %S on machine %s" v.Ast.v_name
          env.d.Desc.d_name
  in
  Hashtbl.replace env.objs (canon v.Ast.v_name) obj

let declare_const env (c : Ast.const_decl) =
  let reg = machine_reg env c.Ast.c_loc c.Ast.c_reg in
  Hashtbl.replace env.objs (canon c.Ast.c_name)
    (Oconst
       {
         reg;
         width = c.Ast.c_width;
         value = Bitvec.of_int64 ~width:c.Ast.c_width c.Ast.c_value;
       })

let declare_syn env (s : Ast.syn_decl) =
  let loc = s.Ast.s_loc in
  match Hashtbl.find_opt env.objs (canon s.Ast.s_base) with
  | None -> err ~loc "syn %S renames unknown object %S" s.Ast.s_name s.Ast.s_base
  | Some base -> (
      match (base, s.Ast.s_index) with
      | Oarray { lo; hi; ew; cells }, Some i ->
          if i < lo || i > hi then
            err ~loc "syn index %d outside [%d..%d]" i lo hi;
          let st =
            match cells with
            | Aregs regs -> Sreg (List.nth regs (i - lo))
            | Amem base_addr -> Smem (base_addr + i - lo)
          in
          Hashtbl.replace env.objs (canon s.Ast.s_name) (Oseq (st, ew))
      | _, None -> Hashtbl.replace env.objs (canon s.Ast.s_name) base
      | _, Some _ -> err ~loc "syn index on non-array %S" s.Ast.s_base)

(* -- reference resolution ------------------------------------------------------- *)

let resolve env loc (r : Ast.ref_) : storage * int =
  match r with
  | Ast.Rname n -> (
      match Hashtbl.find_opt env.objs (canon n) with
      | Some (Oseq (st, w)) -> (st, w)
      | Some (Oconst { reg; width; _ }) -> (Sreg reg, width)
      | Some (Otuple { reg; fields }) ->
          (* a whole tuple denotes the concatenation of its fields *)
          let w =
            List.fold_left (fun acc (_, hi, lo) -> acc + hi - lo + 1) 0 fields
          in
          (Sreg reg, w)
      | Some (Oarray _ | Ostack _) ->
          err ~loc "%S needs an index or stack operation" n
      | None -> err ~loc "undeclared data object %S" n)
  | Ast.Rindex (n, idx) -> (
      match Hashtbl.find_opt env.objs (canon n) with
      | Some (Oarray { lo; hi; ew; cells }) -> (
          match (idx, cells) with
          | Ast.Iconst i, Aregs regs ->
              if i < lo || i > hi then err ~loc "index %d outside [%d..%d]" i lo hi;
              (Sreg (List.nth regs (i - lo)), ew)
          | Ast.Iconst i, Amem base ->
              if i < lo || i > hi then err ~loc "index %d outside [%d..%d]" i lo hi;
              (Smem (base + i - lo), ew)
          | Ast.Ivar v, Amem base -> (
              match Hashtbl.find_opt env.objs (canon v) with
              | Some (Oseq (Sreg p, _)) -> (Smem_dyn (base, p), ew)
              | _ ->
                  err ~loc "index variable %S must be a register-bound seq" v)
          | Ast.Ivar _, Aregs _ ->
              err ~loc
                "machine %s cannot index into registers at run time (array \
                 %S)" env.d.Desc.d_name n)
      | Some _ -> err ~loc "%S is not an array" n
      | None -> err ~loc "undeclared data object %S" n)
  | Ast.Rfield (n, f) -> (
      match Hashtbl.find_opt env.objs (canon n) with
      | Some (Otuple { reg; fields }) -> (
          match
            List.find_opt (fun (fn, _, _) -> canon fn = canon f) fields
          with
          | Some (_, hi, lo) -> (Sregfield (reg, hi, lo), hi - lo + 1)
          | None -> err ~loc "tuple %S has no field %S" n f)
      | Some _ -> err ~loc "%S is not a tuple" n
      | None -> err ~loc "undeclared data object %S" n)

let const_value env (r : Ast.ref_) =
  match r with
  | Ast.Rname n -> (
      match Hashtbl.find_opt env.objs (canon n) with
      | Some (Oconst { value; _ }) -> Some value
      | _ -> None)
  | _ -> None

(* -- op emission ------------------------------------------------------------------ *)

let scratch2 env =
  match env.ctx.Select.at2 with
  | Some r -> r
  | None -> (
      match env.ctx.Select.mbr with
      | Some r -> r
      | None -> err "machine %s lacks a second scratch register" env.d.Desc.d_name)

(* Choose a transfer template whose phase is >= min_phase and whose op can
   join the microinstruction under construction ([taken]): a second
   parallel transfer picks the machine's second bus. *)
let move_op env ?(taken = []) ~min_phase dst src =
  if dst = src then []
  else
    let candidates =
      List.filter
        (fun (tm : Desc.template) -> tm.Desc.t_phase >= min_phase)
        env.move_templates
    in
    let usable =
      List.find_map
        (fun (tm : Desc.template) ->
          let op = Inst.make env.d tm.Desc.t_name [ Inst.A_reg dst; Inst.A_reg src ] in
          match Conflict.fits env.d taken op with
          | Ok () -> Some op
          | Error _ -> None)
        candidates
    in
    match usable with
    | Some op -> [ op ]
    | None ->
        err "machine %s has no conflict-free register transfer at phase >= %d"
          env.d.Desc.d_name min_phase

(* Read a storage into a register, for use as an operand.
   Returns (setup ops, register). *)
let read_storage env _loc (st, _w) =
  match st with
  | Sreg r -> ([], r)
  | Sregfield (r, hi, lo) ->
      (* shift down then mask: the temporaries of survey §2.1.7 *)
      let at = env.ctx.Select.at in
      let s2 = scratch2 env in
      let ops =
        Select.emit_shift_imm env.ctx ~set_flags:false at Rtl.A_shr r lo
        @ Select.emit_const env.ctx s2
            (Bitvec.of_int64 ~width:env.d.Desc.d_word
               (Int64.sub (Int64.shift_left 1L (hi - lo + 1)) 1L))
        @ Select.emit_binop env.ctx at Rtl.A_and at s2
      in
      (ops, at)
  | Smem a ->
      let at = env.ctx.Select.at in
      (Select.emit_load_abs env.ctx at a, at)
  | Smem_dyn (base, idx) ->
      let at = env.ctx.Select.at in
      let ops =
        Select.emit_const_int env.ctx at base
        @ Select.emit_binop env.ctx at Rtl.A_add at idx
        @ Select.emit_load env.ctx at at
      in
      (ops, at)

(* Write register [src] into a storage. *)
let write_storage env loc ~min_phase st src =
  ignore loc;
  match st with
  | Sreg r -> move_op env ~min_phase r src
  | Sregfield (r, hi, lo) ->
      (* r := (r & ~(mask << lo)) | (src << lo); the value moves into AT
         first because src may live in scratch2, which the hole mask needs *)
      let at = env.ctx.Select.at in
      let s2 = scratch2 env in
      let w = env.d.Desc.d_word in
      let mask = Int64.sub (Int64.shift_left 1L (hi - lo + 1)) 1L in
      let hole = Int64.lognot (Int64.shift_left mask lo) in
      Select.emit_shift_imm env.ctx ~set_flags:false at Rtl.A_shl src lo
      @ Select.emit_const env.ctx s2 (Bitvec.of_int64 ~width:w hole)
      @ Select.emit_binop env.ctx s2 Rtl.A_and r s2
      @ Select.emit_binop env.ctx r Rtl.A_or s2 at
  | Smem a -> Select.emit_store_abs env.ctx a src
  | Smem_dyn (base, idx) ->
      let at = env.ctx.Select.at in
      Select.emit_const_int env.ctx at base
      @ Select.emit_binop env.ctx at Rtl.A_add at idx
      @ Select.emit_store env.ctx at src

(* An operand into a register. *)
let operand_reg env loc ~for_write_temp (o : Ast.operand) =
  ignore for_write_temp;
  match o with
  | Ast.Onum v ->
      let at = env.ctx.Select.at in
      (Select.emit_const env.ctx at (Bitvec.of_int64 ~width:env.d.Desc.d_word v), at)
  | Ast.Oref r -> read_storage env loc (resolve env loc r)

let abinop_of = function
  | Ast.Sadd -> Rtl.A_add
  | Ast.Sadc -> Rtl.A_adc
  | Ast.Ssub -> Rtl.A_sub
  | Ast.Smul -> Rtl.A_mul
  | Ast.Sand -> Rtl.A_and
  | Ast.Sor -> Rtl.A_or
  | Ast.Sxor -> Rtl.A_xor

(* Compile an assignment.  [min_phase] constrains template phases inside a
   cocycle.  The common register-to-register forms produce exactly one
   microoperation. *)
let assign_ops env loc ?(taken = []) ~min_phase (dst : Ast.ref_) (e : Ast.expr)
    : Inst.op list =
  let dst_st, _ = resolve env loc dst in
  match (dst_st, e) with
  | Sreg d, Ast.Eop (Ast.Oref src_r) -> (
      match resolve env loc src_r with
      | Sreg s, _ -> move_op env ~taken ~min_phase d s
      | st -> (
          let pre, r = read_storage env loc st in
          pre @ move_op env ~taken ~min_phase d r))
  | Sreg d, Ast.Eop (Ast.Onum v) ->
      Select.emit_const env.ctx d (Bitvec.of_int64 ~width:env.d.Desc.d_word v)
  | Sreg d, Ast.Ebin (op, a, b) ->
      let s1, ra = operand_reg env loc ~for_write_temp:false a in
      let s2, rb =
        match b with
        | Ast.Onum v ->
            let r2 = scratch2 env in
            (Select.emit_const env.ctx r2
               (Bitvec.of_int64 ~width:env.d.Desc.d_word v), r2)
        | _ -> operand_reg env loc ~for_write_temp:false b
      in
      s1 @ s2 @ Select.emit_binop env.ctx d (abinop_of op) ra rb
  | Sreg d, Ast.Enot a ->
      let s, r = operand_reg env loc ~for_write_temp:false a in
      s @ Select.emit_not env.ctx d r
  | Sreg d, Ast.Eshift (a, n) ->
      let s, r = operand_reg env loc ~for_write_temp:false a in
      let op = if n >= 0 then Rtl.A_shl else Rtl.A_shr in
      if n = 0 then s @ move_op env ~min_phase d r
      else s @ Select.emit_shift_imm env.ctx ~set_flags:true d op r (abs n)
  | Sreg d, Ast.Erotate (a, n) ->
      let s, r = operand_reg env loc ~for_write_temp:false a in
      let op = if n >= 0 then Rtl.A_rol else Rtl.A_ror in
      if n = 0 then s @ move_op env ~min_phase d r
      else s @ Select.emit_shift_imm env.ctx ~set_flags:true d op r (abs n)
  | st, e ->
      (* non-register destination: compute into scratch2, then store *)
      let s2 = scratch2 env in
      let compute =
        match e with
        | Ast.Eop (Ast.Onum v) ->
            Select.emit_const env.ctx s2
              (Bitvec.of_int64 ~width:env.d.Desc.d_word v)
        | Ast.Eop (Ast.Oref r) ->
            let pre, src = read_storage env loc (resolve env loc r) in
            pre @ move_op env ~min_phase:0 s2 src
        | Ast.Ebin (op, a, b) ->
            let sa, ra = operand_reg env loc ~for_write_temp:false a in
            (* both operands may want AT; give b the scratch2 slot and
               compute into it *)
            let sb, rb =
              match b with
              | Ast.Onum v ->
                  (Select.emit_const env.ctx s2
                     (Bitvec.of_int64 ~width:env.d.Desc.d_word v), s2)
              | Ast.Oref r -> (
                  match resolve env loc r with
                  | Sreg rr, _ -> ([], rr)
                  | st2 ->
                      let pre, r0 = read_storage env loc st2 in
                      (pre @ move_op env ~min_phase:0 s2 r0, s2))
            in
            sa @ sb @ Select.emit_binop env.ctx s2 (abinop_of op) ra rb
        | Ast.Enot a ->
            let sa, ra = operand_reg env loc ~for_write_temp:false a in
            sa @ Select.emit_not env.ctx s2 ra
        | Ast.Eshift (a, n) ->
            let sa, ra = operand_reg env loc ~for_write_temp:false a in
            let op = if n >= 0 then Rtl.A_shl else Rtl.A_shr in
            sa @ Select.emit_shift_imm env.ctx ~set_flags:true s2 op ra (abs n)
        | Ast.Erotate (a, n) ->
            let sa, ra = operand_reg env loc ~for_write_temp:false a in
            let op = if n >= 0 then Rtl.A_rol else Rtl.A_ror in
            sa @ Select.emit_shift_imm env.ctx ~set_flags:true s2 op ra (abs n)
      in
      compute @ write_storage env loc ~min_phase:0 st s2

(* -- tests -------------------------------------------------------------------------- *)

let flag_of_name loc = function
  | "UF" -> Rtl.U
  | "CF" | "CARRY" -> Rtl.C
  | "ZF" | "ZERO" -> Rtl.Z
  | "NF" -> Rtl.N
  | "VF" | "OVERFLOW" -> Rtl.V
  | f -> Diag.error ~loc Diag.Instantiation "unknown condition flag %S" f

let test_cond env loc (t : Ast.test) : Desc.cond =
  let reg_of r =
    match resolve env loc r with
    | Sreg rr, _ -> rr
    | _ ->
        err ~loc "tests apply to register-bound objects only (machine %s)"
          env.d.Desc.d_name
  in
  let c =
    match t with
    | Ast.Tzero r -> Desc.C_reg_zero (reg_of r, true)
    | Ast.Tnonzero r -> Desc.C_reg_zero (reg_of r, false)
    | Ast.Tflag (f, v) -> Desc.C_flag (flag_of_name loc f, v)
  in
  if not (Desc.cond_supported env.d c) then
    err ~loc "machine %s cannot test this condition (S* requires a \
              hardware-testable condition)" env.d.Desc.d_name;
  c

(* -- statement compilation ----------------------------------------------------------- *)

(* Builder for linked blocks (microinstructions are explicit in S-star). *)
type sb = {
  mutable done_blocks : Pipeline.linked_block list;  (* reversed *)
  mutable cur_label : string;
  mutable cur_mis : (Inst.op list * Select.lnext) list;  (* reversed *)
  mutable fresh : int;
}

let sb_make entry = { done_blocks = []; cur_label = entry; cur_mis = []; fresh = 0 }

let sb_fresh sb =
  sb.fresh <- sb.fresh + 1;
  Printf.sprintf "ss$%d" sb.fresh

let sb_mi sb ops = sb.cur_mis <- (ops, Select.L_next) :: sb.cur_mis

let sb_ops sb ops = List.iter (fun op -> sb_mi sb [ op ]) ops

let sb_finish sb lnext =
  let mis =
    match sb.cur_mis with
    | (ops, Select.L_next) :: rest -> List.rev ((ops, lnext) :: rest)
    | mis -> List.rev (([], lnext) :: mis)
  in
  sb.done_blocks <-
    { Pipeline.k_label = sb.cur_label; k_mis = mis } :: sb.done_blocks;
  sb.cur_mis <- []

let sb_start sb label = sb.cur_label <- label

let sb_blocks sb = List.rev sb.done_blocks

(* Compose ops into one microinstruction, rejecting hardware conflicts. *)
let compose env loc ops =
  match Conflict.check_inst env.d { Inst.ops; next = Inst.Next } with
  | Ok () -> ops
  | Error reason ->
      Diag.error ~loc Diag.Compaction
        "cannot compose these statements into one microinstruction: %a"
        Conflict.pp_reason reason

(* A statement that must occupy exactly one microoperation (a cobegin or
   cocycle arm). *)
let rec single_op env ?(taken = []) ~min_phase (s : Ast.stmt) : Inst.op =
  match s with
  | Ast.Sassign (r, e, loc) -> (
      match assign_ops env loc ~taken ~min_phase r e with
      | [ op ] -> op
      | ops ->
          Diag.error ~loc Diag.Instantiation
            "this statement needs %d microoperations on %s and cannot appear \
             inside cobegin/cocycle" (List.length ops) env.d.Desc.d_name)
  | Ast.Sassert _ | Ast.Scobegin _ | Ast.Scocycle _ | Ast.Sdur _ | Ast.Sseq _
  | Ast.Sregion _ | Ast.Sif _ | Ast.Swhile _ | Ast.Srepeat _ | Ast.Scall _
  | Ast.Sreturn _ | Ast.Spush _ | Ast.Spop _ ->
      Diag.error Diag.Instantiation
        "only elementary statements may appear inside cobegin/cocycle"

(* Arms of a cocycle, phases non-decreasing. *)
and cocycle_ops env loc arms =
  let min_phase = ref 0 in
  let all = ref [] in
  List.iter
    (fun arm ->
      match arm with
      | Ast.Scobegin (inner, l2) ->
          let ops =
            List.fold_left
              (fun acc s ->
                acc @ [ single_op env ~taken:(!all @ acc) ~min_phase:!min_phase s ])
              [] inner
          in
          (match ops with
          | [] -> ()
          | op :: _ ->
              let p = Inst.op_phase op in
              List.iter
                (fun o ->
                  if Inst.op_phase o <> p then
                    Diag.error ~loc:l2 Diag.Instantiation
                      "cobegin arms inside a cocycle must share a phase")
                ops;
              min_phase := p);
          all := !all @ ops
      | s ->
          let op = single_op env ~taken:!all ~min_phase:!min_phase s in
          min_phase := Inst.op_phase op;
          all := !all @ [ op ])
    arms;
  compose env loc !all

and compile_stmt env sb (s : Ast.stmt) =
  match s with
  | Ast.Sassert _ -> ()  (* verification only *)
  | Ast.Sseq stmts -> List.iter (compile_stmt env sb) stmts
  | Ast.Sregion (stmts, _) -> List.iter (compile_stmt env sb) stmts
  | Ast.Sassign (r, e, loc) -> sb_ops sb (assign_ops env loc ~min_phase:0 r e)
  | Ast.Scobegin (arms, loc) ->
      let ops =
        List.fold_left
          (fun acc s2 -> acc @ [ single_op env ~taken:acc ~min_phase:0 s2 ])
          [] arms
      in
      sb_mi sb (compose env loc ops)
  | Ast.Scocycle (arms, loc) -> sb_mi sb (cocycle_ops env loc arms)
  | Ast.Sdur (s0, seq, loc) -> (
      (* overlap: the long op joins the first microinstruction of the
         sequence *)
      let op0 = single_op env ~min_phase:0 s0 in
      let inner = sb_make "dur$tmp" in
      inner.fresh <- sb.fresh;
      List.iter (compile_stmt env inner) seq;
      sb.fresh <- inner.fresh;
      if inner.done_blocks <> [] then
        Diag.error ~loc Diag.Instantiation
          "dur sequences must be straight-line";
      match List.rev inner.cur_mis with
      | [] -> sb_mi sb [ op0 ]
      | (ops1, n1) :: rest ->
          sb.cur_mis <- List.rev_append ((compose env loc (op0 :: ops1), n1) :: rest) [] @ sb.cur_mis)
  | Ast.Sif (arms, else_, _loc) ->
      let join = sb_fresh sb in
      let rec chain arms =
        match arms with
        | [] ->
            (match else_ with
            | Some stmts -> List.iter (compile_stmt env sb) stmts
            | None -> ());
            sb_finish sb (Select.L_goto join)
        | (t, body) :: rest ->
            let c = test_cond env Loc.dummy t in
            let l_then = sb_fresh sb in
            let l_next = sb_fresh sb in
            sb_finish sb (Select.L_branch (c, l_then));
            sb_start sb l_next;
            (* fallthrough path continues the chain; the branch target gets
               its own block *)
            chain rest;
            sb_start sb l_then;
            List.iter (compile_stmt env sb) body;
            sb_finish sb (Select.L_goto join)
      in
      chain arms;
      sb_start sb join
  | Ast.Swhile (t, _inv, body, _loc) ->
      let head = sb_fresh sb in
      let l_body = sb_fresh sb in
      let exit_ = sb_fresh sb in
      sb_finish sb (Select.L_goto head);
      sb_start sb head;
      let c = test_cond env Loc.dummy t in
      sb_finish sb (Select.L_branch (c, l_body));
      sb_start sb exit_;
      (* the fallthrough of the head is the exit: order blocks so that the
         branch falls through into exit; body comes after *)
      sb_finish sb (Select.L_goto (exit_ ^ "$cont"));
      sb_start sb l_body;
      List.iter (compile_stmt env sb) body;
      sb_finish sb (Select.L_goto head);
      sb_start sb (exit_ ^ "$cont")
  | Ast.Srepeat (body, t, _inv, _loc) ->
      let head = sb_fresh sb in
      sb_finish sb (Select.L_goto head);
      sb_start sb head;
      List.iter (compile_stmt env sb) body;
      let c = test_cond env Loc.dummy t in
      (* until t: loop back when t is false *)
      let c_neg =
        match c with
        | Desc.C_reg_zero (r, v) -> Desc.C_reg_zero (r, not v)
        | Desc.C_flag (f, v) -> Desc.C_flag (f, not v)
        | Desc.C_reg_mask _ | Desc.C_int_pending -> c
      in
      sb_finish sb (Select.L_branch (c_neg, head));
      sb_start sb (sb_fresh sb)
  | Ast.Scall (name, _) ->
      let cont = sb_fresh sb in
      sb_finish sb (Select.L_call ("sproc$" ^ canon name));
      sb_start sb cont
  | Ast.Sreturn _ ->
      sb_finish sb Select.L_return;
      sb_start sb (sb_fresh sb)
  | Ast.Spush (name, v, loc) -> (
      match Hashtbl.find_opt env.objs (canon name) with
      | Some (Ostack { base; ptr; _ }) ->
          let at = env.ctx.Select.at in
          let pre, src = operand_reg env loc ~for_write_temp:false v in
          (* careful: operand may already sit in AT; address goes through AT
             afterwards, so stash the value in scratch2 first if needed *)
          let s2 = scratch2 env in
          let pre, src =
            if src = at then (pre @ move_op env ~min_phase:0 s2 at, s2)
            else (pre, src)
          in
          sb_ops sb
            (pre
            @ Select.emit_const_int env.ctx at base
            @ Select.emit_binop env.ctx at Rtl.A_add at ptr
            @ Select.emit_store env.ctx at src
            @ Select.emit_inc env.ctx ptr ptr)
      | _ -> err ~loc "%S is not a stack" name)
  | Ast.Spop (name, dst, loc) -> (
      match Hashtbl.find_opt env.objs (canon name) with
      | Some (Ostack { base; ptr; _ }) -> (
          match resolve env loc dst with
          | Sreg d, _ ->
              let at = env.ctx.Select.at in
              sb_ops sb
                (Select.emit_dec env.ctx ptr ptr
                @ Select.emit_const_int env.ctx at base
                @ Select.emit_binop env.ctx at Rtl.A_add at ptr
                @ Select.emit_load env.ctx d at)
          | _ -> err ~loc "pop destination must be register-bound")
      | _ -> err ~loc "%S is not a stack" name)

(* -- program ---------------------------------------------------------------------------- *)

let make_env d =
  let ctx = Select.make_ctx d in
  let move_templates =
    Desc.templates_with_sem d Desc.S_move
    |> List.sort (fun a b -> compare a.Desc.t_phase b.Desc.t_phase)
  in
  { d; ctx; objs = Hashtbl.create 32; move_templates }

let instantiate d (p : Ast.program) =
  let env = make_env d in
  List.iter (declare_var env) p.Ast.vars;
  List.iter (declare_const env) p.Ast.consts;
  List.iter (declare_syn env) p.Ast.syns;
  env

let compile (d : Desc.t) (p : Ast.program) :
    Inst.t list * (string * int) list =
  let env = instantiate d p in
  let sb = sb_make "main" in
  (* prologue: materialise ROM constants into their cells *)
  List.iter
    (fun (c : Ast.const_decl) ->
      let reg = machine_reg env c.Ast.c_loc c.Ast.c_reg in
      sb_ops sb
        (Select.emit_const env.ctx reg
           (Bitvec.resize ~width:d.Desc.d_word
              (Bitvec.of_int64 ~width:c.Ast.c_width c.Ast.c_value))))
    p.Ast.consts;
  List.iter (compile_stmt env sb) p.Ast.body;
  sb_finish sb Select.L_halt;
  List.iter
    (fun (pr : Ast.proc) ->
      (* the uses-list must name declared objects *)
      List.iter
        (fun u ->
          if not (Hashtbl.mem env.objs (canon u)) then
            err "procedure %S uses undeclared object %S" pr.Ast.pp_name u)
        pr.Ast.pp_uses;
      sb_start sb ("sproc$" ^ canon pr.Ast.pp_name);
      List.iter (compile_stmt env sb) pr.Ast.pp_body;
      sb_finish sb Select.L_return)
    p.Ast.procs;
  Pipeline.link d (sb_blocks sb)

let parse_compile ?file d src = compile d (Parser.parse ?file src)

let load ?(mem_words = 4096) d (p : Ast.program) =
  let insts, labels = compile d p in
  let sim = Sim.create ~mem_words d in
  Sim.load_store sim insts;
  (sim, labels)
