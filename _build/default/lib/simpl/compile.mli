(** SIMPL → MIR (survey §2.2.1).

    Variables are machine registers; [alias] is the equivalence statement;
    all shifts compile flag-setting so the shifted-out UF bit is testable;
    relational conditions other than comparison with zero synthesise a
    flag-setting subtraction into the reserved scratch register. *)

val compile : Msl_machine.Desc.t -> Ast.program -> Msl_mir.Mir.program
(** @raise Msl_util.Diag.Error on names that are not machine registers,
    non-power-of-two case statements, and similar semantic errors. *)

val parse_compile :
  ?file:string -> Msl_machine.Desc.t -> string -> Msl_mir.Mir.program

val parallelism_profile : Msl_mir.Mir.program -> (string * int * int) list
(** Per nonempty basic block: (label, statement count, dependence depth)
    under the single-identity order — experiment F1's raw data. *)
