lib/simpl/parser.ml: Ast Int64 Lexer List Msl_util String
