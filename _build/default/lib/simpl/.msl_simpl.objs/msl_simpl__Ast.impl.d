lib/simpl/ast.ml: Msl_util
