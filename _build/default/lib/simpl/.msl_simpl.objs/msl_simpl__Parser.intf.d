lib/simpl/parser.mli: Ast
