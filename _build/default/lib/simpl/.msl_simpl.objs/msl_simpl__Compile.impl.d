lib/simpl/compile.ml: Ast Bitvec Build Dataflow Desc Int64 List Mir Msl_bitvec Msl_machine Msl_mir Msl_util Parser Rtl String
