(* Recursive-descent parser for SIMPL.  Expressions contain at most one
   operator, as the survey specifies. *)

module Diag = Msl_util.Diag

type t = { lx : Lexer.t }

let err p fmt = Diag.error ~loc:(Lexer.loc p.lx) Diag.Parsing fmt

let peek p = Lexer.token p.lx
let advance p = Lexer.advance p.lx

let expect p tok =
  if peek p = tok then advance p
  else err p "expected %s, found %s" (Lexer.token_name tok)
      (Lexer.token_name (peek p))

let eat p tok =
  if peek p = tok then begin
    advance p;
    true
  end
  else false

let ident p =
  match peek p with
  | Lexer.Ident s ->
      advance p;
      s
  | t -> err p "expected identifier, found %s" (Lexer.token_name t)

let number p =
  let neg = eat p Lexer.Minus in
  match peek p with
  | Lexer.Number n ->
      advance p;
      if neg then Int64.neg n else n
  | t -> err p "expected number, found %s" (Lexer.token_name t)

let operand p : Ast.operand =
  match peek p with
  | Lexer.Ident s ->
      advance p;
      Ast.Reg s
  | Lexer.Number _ | Lexer.Minus -> Ast.Num (number p)
  | t -> err p "expected register or number, found %s" (Lexer.token_name t)

let binop_of_token = function
  | Lexer.Plus -> Some Ast.Add
  | Lexer.Minus -> Some Ast.Sub
  | Lexer.Amp -> Some Ast.And
  | Lexer.Bar -> Some Ast.Or
  | Lexer.Hash -> Some Ast.Xor
  | _ -> None

(* expr := "~" operand | "-" operand
         | operand [ binop operand | "^" n | "^^" n ] *)
let expr p : Ast.expr =
  match peek p with
  | Lexer.Tilde ->
      advance p;
      Ast.Not (operand p)
  | Lexer.Minus ->
      advance p;
      Ast.Neg (operand p)
  | _ -> (
      let a = operand p in
      match peek p with
      | Lexer.Caret ->
          advance p;
          Ast.Shift (a, Int64.to_int (number p))
      | Lexer.Caret2 ->
          advance p;
          Ast.Rotate (a, Int64.to_int (number p))
      | t -> (
          match binop_of_token t with
          | Some op ->
              advance p;
              Ast.Binop (op, a, operand p)
          | None -> Ast.Operand a))

let relop_of_token = function
  | Lexer.Eq -> Some Ast.Req
  | Lexer.Ne -> Some Ast.Rne
  | Lexer.Lt -> Some Ast.Rlt
  | Lexer.Le -> Some Ast.Rle
  | Lexer.Gt -> Some Ast.Rgt
  | Lexer.Ge -> Some Ast.Rge
  | _ -> None

let flag_names = [ "UF"; "CF"; "ZF"; "NF"; "VF"; "CARRY"; "ZERO"; "OVERFLOW" ]

let cond p : Ast.cond =
  let a = operand p in
  let op =
    match relop_of_token (peek p) with
    | Some op ->
        advance p;
        op
    | None -> err p "expected a relational operator"
  in
  let b = operand p in
  match (a, op, b) with
  | Ast.Reg f, Ast.Req, Ast.Num v
    when List.mem (String.uppercase_ascii f) flag_names && (v = 0L || v = 1L) ->
      Ast.Flag (String.uppercase_ascii f, v = 1L)
  | Ast.Reg f, Ast.Rne, Ast.Num v
    when List.mem (String.uppercase_ascii f) flag_names && (v = 0L || v = 1L) ->
      Ast.Flag (String.uppercase_ascii f, v = 0L)
  | _ -> Ast.Rel (op, a, b)

let rec stmt p : Ast.stmt =
  let loc = Lexer.loc p.lx in
  match peek p with
  | Lexer.Kw "begin" ->
      advance p;
      let stmts = stmt_list p in
      expect p (Lexer.Kw "end");
      Ast.Block stmts
  | Lexer.Kw "if" ->
      advance p;
      let c = cond p in
      expect p (Lexer.Kw "then");
      let s1 = stmt p in
      if eat p (Lexer.Kw "else") then Ast.If (c, s1, Some (stmt p))
      else Ast.If (c, s1, None)
  | Lexer.Kw "while" ->
      advance p;
      let c = cond p in
      expect p (Lexer.Kw "do");
      Ast.While (c, stmt p)
  | Lexer.Kw "for" ->
      advance p;
      let var = ident p in
      expect p Lexer.Assign;
      let from_ = operand p in
      expect p (Lexer.Kw "to");
      let to_ = operand p in
      expect p (Lexer.Kw "do");
      Ast.For { var; from_; to_; body = stmt p; loc }
  | Lexer.Kw "case" ->
      advance p;
      let sel = ident p in
      expect p (Lexer.Kw "of");
      expect p (Lexer.Kw "begin");
      let alts = stmt_list p in
      expect p (Lexer.Kw "end");
      Ast.Case { sel; alts; loc }
  | Lexer.Kw "call" ->
      advance p;
      Ast.Call (ident p, loc)
  | Lexer.Kw "read" ->
      advance p;
      let addr = ident p in
      expect p Lexer.Arrow;
      let dest = ident p in
      Ast.Read { addr; dest; loc }
  | Lexer.Kw "write" ->
      advance p;
      let src = ident p in
      expect p Lexer.Arrow;
      let addr = ident p in
      Ast.Write { src; addr; loc }
  | _ ->
      let e = expr p in
      expect p Lexer.Arrow;
      let dest = ident p in
      Ast.Assign { expr = e; dest; loc }

(* statements separated by ';', with empty statements tolerated *)
and stmt_list p : Ast.stmt list =
  let rec more acc =
    if eat p Lexer.Semi then
      match peek p with
      | Lexer.Kw "end" | Lexer.Eof -> List.rev acc
      | _ -> more (stmt p :: acc)
    else List.rev acc
  in
  match peek p with
  | Lexer.Kw "end" | Lexer.Eof -> []
  | _ -> more [ stmt p ]

let program p : Ast.program =
  let name =
    if eat p (Lexer.Kw "program") then begin
      let n = ident p in
      (* optional parameter list, as in the survey's `incread(n)` *)
      if eat p Lexer.Lparen then begin
        let _ = ident p in
        expect p Lexer.Rparen
      end;
      let _ = eat p Lexer.Semi in
      n
    end
    else "main"
  in
  let aliases = ref [] and procs = ref [] in
  let rec decls () =
    match peek p with
    | Lexer.Kw "alias" ->
        let loc = Lexer.loc p.lx in
        advance p;
        let a = ident p in
        expect p Lexer.Eq;
        let r = ident p in
        expect p Lexer.Semi;
        aliases := (a, r, loc) :: !aliases;
        decls ()
    | Lexer.Kw "procedure" ->
        advance p;
        let pr_name = ident p in
        expect p Lexer.Semi;
        let pr_body = stmt p in
        let _ = eat p Lexer.Semi in
        procs := { Ast.pr_name; pr_body } :: !procs;
        decls ()
    | _ -> ()
  in
  decls ();
  let body = stmt p in
  let _ = eat p Lexer.Semi in
  (match peek p with
  | Lexer.Eof -> ()
  | t -> err p "trailing %s after program body" (Lexer.token_name t));
  {
    Ast.name;
    aliases = List.rev !aliases;
    procs = List.rev !procs;
    body;
  }

let parse ?(file = "<simpl>") src =
  let p = { lx = Lexer.make ~file src } in
  program p
