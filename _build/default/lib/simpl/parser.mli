(** Recursive-descent parser for SIMPL.  Expressions contain at most one
    operator, as the survey specifies. *)

val parse : ?file:string -> string -> Ast.program
(** @raise Msl_util.Diag.Error on lexical or syntax errors. *)
