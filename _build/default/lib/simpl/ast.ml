(* SIMPL — Single Identity Micro Programming Language (Ramamoorthy &
   Tsuchiya 1974; survey §2.2.1).

   A sequential, ALGOL-60-flavoured language whose variables are machine
   registers.  Statements are single-operator register transfers written
   source-first:

       R1 & M3 -> ACC;
       ACC ^-1 -> ACC;         (shift one right; ^^ rotates)
       while R2 <> 0 do ...
       if UF = 1 then ...

   Control structure: begin/end blocks, if-then-else, while-do, for-do,
   case (multiway branch), parameterless procedures.  The single identity
   principle is an *ordering semantics*, not extra syntax: the compiler
   derives the partial order from definitions and uses (Msl_mir.Dataflow
   computes exactly that order).

   Concrete operator spellings (the 1974 paper typesets mathematical
   symbols):  &  |  #(xor)  +  -  ~(complement)  ^n (linear shift, n<0
   right)  ^^n (rotate).  Memory access: `read A -> D` and `write S -> A`.
   `alias N = R` is the equivalence statement. *)

module Loc = Msl_util.Loc

type operand =
  | Reg of string  (* register or alias *)
  | Num of int64

type binop = Add | Sub | And | Or | Xor

type expr =
  | Operand of operand
  | Binop of binop * operand * operand
  | Not of operand
  | Neg of operand
  | Shift of operand * int  (* positive left, negative right *)
  | Rotate of operand * int

type relop = Req | Rne | Rlt | Rle | Rgt | Rge

(* Conditions compare a register with an operand, or test a flag. *)
type cond =
  | Rel of relop * operand * operand
  | Flag of string * bool  (* UF = 1, CARRY = 0, ... *)

type stmt =
  | Assign of { expr : expr; dest : string; loc : Loc.t }
  | Read of { addr : string; dest : string; loc : Loc.t }  (* dest := mem[addr] *)
  | Write of { src : string; addr : string; loc : Loc.t }  (* mem[addr] := src *)
  | If of cond * stmt * stmt option
  | While of cond * stmt
  | For of { var : string; from_ : operand; to_ : operand; body : stmt; loc : Loc.t }
  | Case of { sel : string; alts : stmt list; loc : Loc.t }
  | Call of string * Loc.t
  | Block of stmt list

type proc = { pr_name : string; pr_body : stmt }

type program = {
  name : string;
  aliases : (string * string * Loc.t) list;  (* alias, register *)
  procs : proc list;
  body : stmt;
}
