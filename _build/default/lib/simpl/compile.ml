(* SIMPL -> MIR.

   Variables are machine registers (the survey's §2.1.3 "simple"
   association); the alias declaration is the equivalence statement.  All
   shifts are compiled flag-setting, because the Tucker-Flynn shifter
   exposes the shifted-out bit as the testable UF condition.  Relational
   conditions other than comparison with zero are synthesised with a
   flag-setting subtraction into the reserved scratch register. *)

open Msl_bitvec
open Msl_machine
open Msl_mir
module Diag = Msl_util.Diag
module Loc = Msl_util.Loc

type env = {
  d : Desc.t;
  aliases : (string * string) list;  (* canonical alias -> register name *)
  at : Mir.reg;
}

let canon = String.lowercase_ascii

let machine_reg d name =
  let target = canon name in
  List.find_opt (fun r -> canon r.Desc.r_name = target) (Desc.regs d)

let make_env d (p : Ast.program) =
  let aliases =
    List.map
      (fun (a, r, loc) ->
        (match machine_reg d r with
        | Some _ -> ()
        | None ->
            Diag.error ~loc Diag.Semantic "machine %s has no register %S"
              d.Desc.d_name r);
        (canon a, r))
      p.Ast.aliases
  in
  let at =
    match Desc.regs_of_class d "at" with
    | r :: _ -> Mir.Phys r.Desc.r_id
    | [] ->
        Diag.error Diag.Semantic "machine %s has no scratch register"
          d.Desc.d_name
  in
  { d; aliases; at }

let resolve env loc name =
  let name =
    match List.assoc_opt (canon name) env.aliases with
    | Some r -> r
    | None -> name
  in
  match machine_reg env.d name with
  | Some r -> Mir.Phys r.Desc.r_id
  | None ->
      Diag.error ~loc Diag.Semantic
        "%S is not a register of machine %s (SIMPL variables are machine \
         registers)" name env.d.Desc.d_name

let const env v = Mir.R_const (Bitvec.of_int64 ~width:env.d.Desc.d_word v)

(* An operand as (setup statements, register); numbers go through AT. *)
let operand_reg env loc = function
  | Ast.Reg r -> ([], resolve env loc r)
  | Ast.Num v -> ([ Mir.assign env.at (const env v) ], env.at)

let fold_binop op a b =
  match op with
  | Ast.Add -> Int64.add a b
  | Ast.Sub -> Int64.sub a b
  | Ast.And -> Int64.logand a b
  | Ast.Or -> Int64.logor a b
  | Ast.Xor -> Int64.logxor a b

let abinop = function
  | Ast.Add -> Rtl.A_add
  | Ast.Sub -> Rtl.A_sub
  | Ast.And -> Rtl.A_and
  | Ast.Or -> Rtl.A_or
  | Ast.Xor -> Rtl.A_xor

(* Compile `expr -> dest`. *)
let assign env b loc (e : Ast.expr) dest =
  let dst = resolve env loc dest in
  match e with
  | Ast.Operand (Ast.Reg r) ->
      Build.add b (Mir.assign dst (Mir.R_copy (resolve env loc r)))
  | Ast.Operand (Ast.Num v) -> Build.add b (Mir.assign dst (const env v))
  | Ast.Binop (op, Ast.Num x, Ast.Num y) ->
      Build.add b (Mir.assign dst (const env (fold_binop op x y)))
  | Ast.Binop (op, a, bb) ->
      let s1, ra = operand_reg env loc a in
      let s2, rb = operand_reg env loc bb in
      Build.add_list b s1;
      Build.add_list b s2;
      Build.add b (Mir.assign dst (Mir.R_binop (abinop op, ra, rb)))
  | Ast.Not (Ast.Num v) -> Build.add b (Mir.assign dst (const env (Int64.lognot v)))
  | Ast.Not (Ast.Reg r) ->
      Build.add b (Mir.assign dst (Mir.R_not (resolve env loc r)))
  | Ast.Neg (Ast.Num v) -> Build.add b (Mir.assign dst (const env (Int64.neg v)))
  | Ast.Neg (Ast.Reg r) ->
      Build.add b (Mir.assign dst (Mir.R_neg (resolve env loc r)))
  | Ast.Shift (a, n) | Ast.Rotate (a, n) ->
      let rot = match e with Ast.Rotate _ -> true | _ -> false in
      let s, ra = operand_reg env loc a in
      Build.add_list b s;
      let op =
        if rot then if n >= 0 then Rtl.A_rol else Rtl.A_ror
        else if n >= 0 then Rtl.A_shl
        else Rtl.A_shr
      in
      if n = 0 then Build.add b (Mir.assign dst (Mir.R_copy ra))
      else
        (* flag-setting: the shifted-out bit becomes the testable UF *)
        Build.add b
          (Mir.Assign
             { dst; rv = Mir.R_shift_imm (op, ra, abs n); set_flags = true })

let flag_of_name loc = function
  | "UF" -> Rtl.U
  | "CF" | "CARRY" -> Rtl.C
  | "ZF" | "ZERO" -> Rtl.Z
  | "NF" -> Rtl.N
  | "VF" | "OVERFLOW" -> Rtl.V
  | f -> Diag.error ~loc Diag.Semantic "unknown condition flag %S" f

(* Compile a condition: returns (setup stmts, MIR condition), or a
   statically-known boolean when both sides are numbers. *)
let condition env loc (c : Ast.cond) :
    [ `Cond of Mir.stmt list * Mir.cond | `Known of bool ] =
  match c with
  | Ast.Flag (f, v) ->
      let fl = flag_of_name loc f in
      `Cond ([], if v then Mir.Flag_set fl else Mir.Flag_clear fl)
  | Ast.Rel (op, Ast.Num x, Ast.Num y) ->
      let r =
        match op with
        | Ast.Req -> x = y
        | Ast.Rne -> x <> y
        | Ast.Rlt -> Int64.unsigned_compare x y < 0
        | Ast.Rle -> Int64.unsigned_compare x y <= 0
        | Ast.Rgt -> Int64.unsigned_compare x y > 0
        | Ast.Rge -> Int64.unsigned_compare x y >= 0
      in
      `Known r
  | Ast.Rel (op, a, bb) -> (
      match (op, a, bb) with
      | Ast.Req, Ast.Reg x, Ast.Num 0L | Ast.Req, Ast.Num 0L, Ast.Reg x ->
          `Cond ([], Mir.Zero (resolve env loc x))
      | Ast.Rne, Ast.Reg x, Ast.Num 0L | Ast.Rne, Ast.Num 0L, Ast.Reg x ->
          `Cond ([], Mir.Nonzero (resolve env loc x))
      | _ ->
          (* x op y via a flag-setting subtraction into AT:
             =  : Z set     <> : Z clear
             <  : C set (borrow)      >= : C clear
             >  : y - x borrows       <= : y - x does not borrow *)
          let sub lhs rhs =
            let s1, rl = operand_reg env loc lhs in
            let s2, rr =
              match rhs with
              | Ast.Reg r -> ([], resolve env loc r)
              | Ast.Num v ->
                  (* the scratch already holds lhs when lhs was a number;
                     a second number needs folding, handled above *)
                  ([ Mir.assign env.at (const env v) ], env.at)
            in
            (* when both operands needed AT the program is ill-formed *)
            (match (lhs, rhs) with
            | Ast.Num _, Ast.Num _ -> assert false
            | _ -> ());
            s1 @ s2
            @ [
                Mir.Assign
                  {
                    dst = env.at;
                    rv = Mir.R_binop (Rtl.A_sub, rl, rr);
                    set_flags = true;
                  };
              ]
          in
          let direct flag_if =
            let stmts = sub a bb in
            `Cond (stmts, flag_if)
          in
          let swapped flag_if =
            let stmts = sub bb a in
            `Cond (stmts, flag_if)
          in
          (match op with
          | Ast.Req -> direct (Mir.Flag_set Rtl.Z)
          | Ast.Rne -> direct (Mir.Flag_clear Rtl.Z)
          | Ast.Rlt -> direct (Mir.Flag_set Rtl.C)
          | Ast.Rge -> direct (Mir.Flag_clear Rtl.C)
          | Ast.Rgt -> swapped (Mir.Flag_set Rtl.C)
          | Ast.Rle -> swapped (Mir.Flag_clear Rtl.C)))

let rec compile_stmt env b (s : Ast.stmt) =
  match s with
  | Ast.Block stmts -> List.iter (compile_stmt env b) stmts
  | Ast.Assign { expr; dest; loc } -> assign env b loc expr dest
  | Ast.Read { addr; dest; loc } ->
      Build.add b
        (Mir.assign (resolve env loc dest) (Mir.R_mem (resolve env loc addr)))
  | Ast.Write { src; addr; loc } ->
      Build.add b
        (Mir.Store { addr = resolve env loc addr; src = resolve env loc src })
  | Ast.Call (name, _loc) ->
      let cont = Build.fresh_label b in
      Build.finish b (Mir.Call { proc = "proc$" ^ name; cont });
      Build.start b cont
  | Ast.If (c, s1, s2) -> compile_if env b c s1 s2
  | Ast.While (c, body) -> compile_while env b c body
  | Ast.For { var; from_; to_; body; loc } ->
      compile_for env b loc var from_ to_ body
  | Ast.Case { sel; alts; loc } -> compile_case env b loc sel alts

and compile_if env b c s1 s2 =
  match condition env Loc.dummy c with
  | `Known true -> compile_stmt env b s1
  | `Known false -> (
      match s2 with Some s -> compile_stmt env b s | None -> ())
  | `Cond (pre, mc) ->
      Build.add_list b pre;
      let l_then = Build.fresh_label b in
      let l_else = Build.fresh_label b in
      let l_join = Build.fresh_label b in
      Build.finish b (Mir.If (mc, l_then, l_else));
      Build.start b l_then;
      compile_stmt env b s1;
      Build.finish b (Mir.Goto l_join);
      Build.start b l_else;
      (match s2 with Some s -> compile_stmt env b s | None -> ());
      Build.finish b (Mir.Goto l_join);
      Build.start b l_join

and compile_while env b c body =
  let l_head = Build.fresh_label b in
  let l_body = Build.fresh_label b in
  let l_exit = Build.fresh_label b in
  Build.finish b (Mir.Goto l_head);
  Build.start b l_head;
  (match condition env Loc.dummy c with
  | `Known true ->
      (* infinite loop: still compile the body *)
      Build.finish b (Mir.Goto l_body)
  | `Known false -> Build.finish b (Mir.Goto l_exit)
  | `Cond (pre, mc) ->
      Build.add_list b pre;
      Build.finish b (Mir.If (mc, l_body, l_exit)));
  Build.start b l_body;
  compile_stmt env b body;
  Build.finish b (Mir.Goto l_head);
  Build.start b l_exit

and compile_for env b loc var from_ to_ body =
  let v = resolve env loc var in
  (match from_ with
  | Ast.Num n -> Build.add b (Mir.assign v (const env n))
  | Ast.Reg r -> Build.add b (Mir.assign v (Mir.R_copy (resolve env loc r))));
  let l_head = Build.fresh_label b in
  let l_body = Build.fresh_label b in
  let l_exit = Build.fresh_label b in
  Build.finish b (Mir.Goto l_head);
  Build.start b l_head;
  (* continue while v <= to_, i.e. while (to_ - v) does not borrow *)
  let pre_to =
    match to_ with
    | Ast.Num n -> [ Mir.assign env.at (const env n) ]
    | Ast.Reg r -> [ Mir.assign env.at (Mir.R_copy (resolve env loc r)) ]
  in
  Build.add_list b pre_to;
  Build.add b
    (Mir.Assign
       { dst = env.at; rv = Mir.R_binop (Rtl.A_sub, env.at, v); set_flags = true });
  Build.finish b (Mir.If (Mir.Flag_clear Rtl.C, l_body, l_exit));
  Build.start b l_body;
  compile_stmt env b body;
  Build.add b (Mir.assign v (Mir.R_inc v));
  Build.finish b (Mir.Goto l_head);
  Build.start b l_exit

and compile_case env b loc sel alts =
  let n = List.length alts in
  if n = 0 then Diag.error ~loc Diag.Semantic "empty case statement";
  if n = 1 then
    (* a one-armed case is just its arm *)
    compile_stmt env b (List.hd alts)
  else begin
  let bits =
    let rec log2 v = if v <= 1 then 0 else 1 + log2 (v / 2) in
    log2 n
  in
  if 1 lsl bits <> n then
    Diag.error ~loc Diag.Semantic
      "case needs a power-of-two number of alternatives (got %d): the \
       multiway branch dispatches on the selector's low bits" n;
  let sel = resolve env loc sel in
  let l_join = Build.fresh_label b in
  let alt_labels = List.map (fun _ -> Build.fresh_label b) alts in
  Build.finish b
    (Mir.Switch { sel; hi = bits - 1; lo = 0; targets = alt_labels });
  List.iter2
    (fun l alt ->
      Build.start b l;
      compile_stmt env b alt;
      Build.finish b (Mir.Goto l_join))
    alt_labels alts;
  Build.start b l_join
  end

let compile (d : Desc.t) (p : Ast.program) : Mir.program =
  let env = make_env d p in
  let b = Build.make ~prefix:"sl" ~entry:"main" () in
  compile_stmt env b p.Ast.body;
  Build.finish b Mir.Halt;
  let procs =
    List.map
      (fun (pr : Ast.proc) ->
        let pb =
          Build.make ~prefix:("sp$" ^ pr.Ast.pr_name)
            ~entry:("proc$" ^ pr.Ast.pr_name ^ "$entry") ()
        in
        compile_stmt env pb pr.Ast.pr_body;
        Build.finish pb Mir.Ret;
        { Mir.p_name = "proc$" ^ pr.Ast.pr_name; p_blocks = Build.blocks pb })
      p.Ast.procs
  in
  {
    Mir.main = Build.blocks b;
    procs;
    vreg_names = [];
    next_vreg = 0;
  }

let parse_compile ?file d src = compile d (Parser.parse ?file src)

(* The single-identity parallelism profile of a program: for each basic
   block, (statement count, dependence depth).  Experiment F1. *)
let parallelism_profile (p : Mir.program) =
  List.filter_map
    (fun (blk : Mir.block) ->
      match blk.Mir.b_stmts with
      | [] -> None
      | stmts ->
          let levels = Dataflow.stmt_levels stmts in
          let depth = 1 + List.fold_left max 0 levels in
          Some (blk.Mir.b_label, List.length stmts, depth))
    (Mir.all_blocks p)
