(* Tokeniser for SIMPL. *)

module Diag = Msl_util.Diag
module Loc = Msl_util.Loc
module Scanner = Msl_util.Scanner

type token =
  | Ident of string
  | Number of int64
  | Kw of string  (* keywords, lowercased *)
  | Arrow  (* -> *)
  | Semi
  | Lparen
  | Rparen
  | Plus
  | Minus
  | Amp
  | Bar
  | Hash  (* exclusive or *)
  | Tilde  (* complement *)
  | Caret  (* shift *)
  | Caret2  (* rotate *)
  | Assign  (* := (for-loop initialisation) *)
  | Eq
  | Ne  (* <> *)
  | Lt
  | Le
  | Gt
  | Ge
  | Eof

let keywords =
  [ "program"; "begin"; "end"; "if"; "then"; "else"; "while"; "do"; "for";
    "to"; "case"; "of"; "procedure"; "call"; "alias"; "read"; "write" ]

type t = {
  sc : Scanner.t;
  mutable tok : token;
  mutable tok_loc : Loc.t;
}

let err lx fmt = Diag.error ~loc:(Scanner.here lx.sc) Diag.Lexing fmt

(* `comment ... ;` is skipped entirely, as in the paper's examples. *)
let rec skip_trivia sc =
  Scanner.skip_spaces sc;
  match Scanner.peek sc with
  | Some c when Scanner.is_ident_start c ->
      let save = (sc.Scanner.offset, sc.Scanner.line, sc.Scanner.col) in
      let word = Scanner.ident sc in
      if String.lowercase_ascii word = "comment" then begin
        let _ : string = Scanner.take_while sc (fun ch -> ch <> ';') in
        let _ = Scanner.eat sc ';' in
        skip_trivia sc
      end
      else begin
        let o, l, c2 = save in
        sc.Scanner.offset <- o;
        sc.Scanner.line <- l;
        sc.Scanner.col <- c2
      end
  | Some _ | None -> ()

let scan_token lx =
  let sc = lx.sc in
  skip_trivia sc;
  let start = Scanner.pos sc in
  let fin tok =
    lx.tok <- tok;
    lx.tok_loc <- Scanner.loc_from sc start
  in
  match Scanner.peek sc with
  | None -> fin Eof
  | Some c when Scanner.is_ident_start c ->
      let word = Scanner.ident sc in
      let lower = String.lowercase_ascii word in
      if List.mem lower keywords then fin (Kw lower) else fin (Ident word)
  | Some c when Scanner.is_digit c ->
      let s = Scanner.take_while sc Scanner.is_alnum in
      let v =
        try Int64.of_string s with Failure _ -> err lx "malformed number %S" s
      in
      fin (Number v)
  | Some '-' ->
      Scanner.advance sc;
      if Scanner.eat sc '>' then fin Arrow else fin Minus
  | Some ';' -> Scanner.advance sc; fin Semi
  | Some '(' -> Scanner.advance sc; fin Lparen
  | Some ')' -> Scanner.advance sc; fin Rparen
  | Some '+' -> Scanner.advance sc; fin Plus
  | Some '&' -> Scanner.advance sc; fin Amp
  | Some '|' -> Scanner.advance sc; fin Bar
  | Some '#' -> Scanner.advance sc; fin Hash
  | Some '~' -> Scanner.advance sc; fin Tilde
  | Some '^' ->
      Scanner.advance sc;
      if Scanner.eat sc '^' then fin Caret2 else fin Caret
  | Some ':' ->
      Scanner.advance sc;
      if Scanner.eat sc '=' then fin Assign else err lx "expected ':='"
  | Some '=' -> Scanner.advance sc; fin Eq
  | Some '<' ->
      Scanner.advance sc;
      if Scanner.eat sc '>' then fin Ne
      else if Scanner.eat sc '=' then fin Le
      else fin Lt
  | Some '>' ->
      Scanner.advance sc;
      if Scanner.eat sc '=' then fin Ge else fin Gt
  | Some c -> err lx "unexpected character '%c'" c

let make ?(file = "<simpl>") src =
  let lx =
    { sc = Scanner.make ~file src; tok = Eof; tok_loc = Loc.dummy }
  in
  scan_token lx;
  lx

let token lx = lx.tok
let loc lx = lx.tok_loc
let advance lx = scan_token lx

let token_name = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Number n -> Printf.sprintf "number %Ld" n
  | Kw k -> Printf.sprintf "keyword %S" k
  | Arrow -> "'->'"
  | Semi -> "';'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Plus -> "'+'"
  | Minus -> "'-'"
  | Amp -> "'&'"
  | Bar -> "'|'"
  | Hash -> "'#'"
  | Tilde -> "'~'"
  | Caret -> "'^'"
  | Caret2 -> "'^^'"
  | Assign -> "':='"
  | Eq -> "'='"
  | Ne -> "'<>'"
  | Lt -> "'<'"
  | Le -> "'<='"
  | Gt -> "'>'"
  | Ge -> "'>='"
  | Eof -> "end of input"
