(* Fixed-width bitvectors over int64.  Invariant: [v] has no bits set at or
   above [w].  All width checks funnel through [check_same] / [norm]. *)

type t = { w : int; v : int64 }

type flags = {
  carry : bool;
  overflow : bool;
  zero : bool;
  negative : bool;
  shifted_out : bool;
}

let no_flags =
  { carry = false; overflow = false; zero = false; negative = false;
    shifted_out = false }

let check_width w =
  if w < 1 || w > 64 then
    invalid_arg (Printf.sprintf "Bitvec: width %d outside 1..64" w)

let mask w = if w = 64 then -1L else Int64.sub (Int64.shift_left 1L w) 1L

let norm w v = { w; v = Int64.logand v (mask w) }

let check_same op a b =
  if a.w <> b.w then
    invalid_arg
      (Printf.sprintf "Bitvec.%s: width mismatch (%d vs %d)" op a.w b.w)

let zero w =
  check_width w;
  { w; v = 0L }

let ones w =
  check_width w;
  { w; v = mask w }

let of_int64 ~width v =
  check_width width;
  norm width v

let of_int ~width v = of_int64 ~width (Int64.of_int v)

let of_bool b = { w = 1; v = (if b then 1L else 0L) }

let width t = t.w
let to_int64 t = t.v

let to_int t =
  if Int64.compare t.v (Int64.of_int max_int) > 0 || Int64.compare t.v 0L < 0
  then invalid_arg "Bitvec.to_int: value does not fit in int"
  else Int64.to_int t.v

let msb t = Int64.logand (Int64.shift_right_logical t.v (t.w - 1)) 1L = 1L
let lsb t = Int64.logand t.v 1L = 1L

let bit t i =
  if i < 0 || i >= t.w then
    invalid_arg (Printf.sprintf "Bitvec.bit: index %d outside 0..%d" i (t.w - 1))
  else Int64.logand (Int64.shift_right_logical t.v i) 1L = 1L

let to_signed_int64 t =
  if t.w = 64 || not (msb t) then t.v
  else Int64.logor t.v (Int64.lognot (mask t.w))

let is_zero t = t.v = 0L

let popcount t =
  let rec loop acc v =
    if v = 0L then acc else loop (acc + 1) (Int64.logand v (Int64.sub v 1L))
  in
  loop 0 t.v

let equal a b = a.w = b.w && a.v = b.v

let compare_unsigned a b =
  check_same "compare_unsigned" a b;
  Int64.unsigned_compare a.v b.v

let compare_signed a b =
  check_same "compare_signed" a b;
  Int64.compare (to_signed_int64 a) (to_signed_int64 b)

let flags_of result ~carry ~overflow ?(shifted_out = false) () =
  { carry; overflow; zero = is_zero result; negative = msb result; shifted_out }

(* Addition with explicit carry-in.  For widths < 64 the exact sum fits in
   int64, so the carry is simply bit [w] of the raw sum; width 64 needs the
   wraparound test. *)
let adc a b cin =
  check_same "adc" a b;
  let w = a.w in
  let raw = Int64.add (Int64.add a.v b.v) (if cin then 1L else 0L) in
  let result = norm w raw in
  let carry =
    if w < 64 then Int64.logand (Int64.shift_right_logical raw w) 1L = 1L
    else
      (* wrapped iff result < a, or result = a with both carry-in and b<>0 *)
      let c = Int64.unsigned_compare raw a.v in
      c < 0 || (c = 0 && cin && b.v <> 0L)
  in
  let sa = msb a and sb = msb b and sr = msb result in
  let overflow = sa = sb && sr <> sa in
  (result, flags_of result ~carry ~overflow ())

let add_f a b = adc a b false
let add a b = fst (add_f a b)

let lognot t = norm t.w (Int64.lognot t.v)

let sub_f a b =
  check_same "sub" a b;
  let r, f = adc a (lognot b) true in
  (* Borrow is the complement of the carry out of [a + ~b + 1]. *)
  (r, { f with carry = not f.carry })

let sub a b = fst (sub_f a b)

let neg t = sub (zero t.w) t
let succ t = add t (norm t.w 1L)
let pred t = sub t (norm t.w 1L)

(* High 64 bits of the unsigned 128-bit product, via 32-bit halves. *)
let umulh a b =
  let lo32 x = Int64.logand x 0xFFFFFFFFL in
  let hi32 x = Int64.shift_right_logical x 32 in
  let al = lo32 a and ah = hi32 a and bl = lo32 b and bh = hi32 b in
  let ll = Int64.mul al bl in
  let lh = Int64.mul al bh in
  let hl = Int64.mul ah bl in
  let hh = Int64.mul ah bh in
  let mid = Int64.add (Int64.add (hi32 ll) (lo32 lh)) (lo32 hl) in
  Int64.add (Int64.add hh (Int64.add (hi32 lh) (hi32 hl))) (hi32 mid)

let mul_f a b =
  check_same "mul" a b;
  let w = a.w in
  let raw = Int64.mul a.v b.v in
  let result = norm w raw in
  let overflow =
    if w = 64 then umulh a.v b.v <> 0L
    else
      (* exact product exceeds the mask, visible either in the raw low word
         or in the 128-bit high word *)
      umulh a.v b.v <> 0L
      || Int64.unsigned_compare raw (mask w) > 0
  in
  (result, flags_of result ~carry:overflow ~overflow ())

let mul a b = fst (mul_f a b)

let udiv a b =
  check_same "udiv" a b;
  if b.v = 0L then raise Division_by_zero;
  norm a.w (Int64.unsigned_div a.v b.v)

let urem a b =
  check_same "urem" a b;
  if b.v = 0L then raise Division_by_zero;
  norm a.w (Int64.unsigned_rem a.v b.v)

let logand a b =
  check_same "logand" a b;
  { a with v = Int64.logand a.v b.v }

let logor a b =
  check_same "logor" a b;
  { a with v = Int64.logor a.v b.v }

let logxor a b =
  check_same "logxor" a b;
  { a with v = Int64.logxor a.v b.v }

let shift_left_f t n =
  if n <= 0 then (t, flags_of t ~carry:false ~overflow:false ())
  else
    let result = if n >= t.w then zero t.w else norm t.w (Int64.shift_left t.v n) in
    let shifted_out = if n <= t.w then bit t (t.w - n) else false in
    (result, flags_of result ~carry:shifted_out ~overflow:false ~shifted_out ())

let shift_left t n = fst (shift_left_f t n)

let shift_right_f t n =
  if n <= 0 then (t, flags_of t ~carry:false ~overflow:false ())
  else
    let result =
      if n >= t.w then zero t.w
      else { t with v = Int64.shift_right_logical t.v n }
    in
    let shifted_out = if n <= t.w then bit t (n - 1) else false in
    (result, flags_of result ~carry:shifted_out ~overflow:false ~shifted_out ())

let shift_right t n = fst (shift_right_f t n)

let shift_right_arith t n =
  if n <= 0 then t
  else if n >= t.w then if msb t then ones t.w else zero t.w
  else
    let sv = to_signed_int64 t in
    norm t.w (Int64.shift_right sv n)

let rotate_left t n =
  let n = ((n mod t.w) + t.w) mod t.w in
  if n = 0 then t
  else logor (shift_left t n) (shift_right t (t.w - n))

let rotate_right t n = rotate_left t (-n)

let extract ~hi ~lo t =
  if lo < 0 || hi < lo || hi >= t.w then
    invalid_arg
      (Printf.sprintf "Bitvec.extract: [%d..%d] invalid for width %d" hi lo t.w);
  norm (hi - lo + 1) (Int64.shift_right_logical t.v lo)

let insert ~hi ~lo ~into field =
  if lo < 0 || hi < lo || hi >= into.w then
    invalid_arg
      (Printf.sprintf "Bitvec.insert: [%d..%d] invalid for width %d" hi lo
         into.w);
  if field.w <> hi - lo + 1 then
    invalid_arg
      (Printf.sprintf "Bitvec.insert: field width %d, slot width %d" field.w
         (hi - lo + 1));
  let hole = Int64.lognot (Int64.shift_left (mask field.w) lo) in
  { into with
    v = Int64.logor (Int64.logand into.v hole) (Int64.shift_left field.v lo) }

let concat hi lo =
  let w = hi.w + lo.w in
  if w > 64 then
    invalid_arg (Printf.sprintf "Bitvec.concat: combined width %d > 64" w);
  { w; v = Int64.logor (Int64.shift_left hi.v lo.w) lo.v }

let resize ~width t =
  check_width width;
  norm width t.v

let sign_extend ~width t =
  check_width width;
  if width <= t.w then norm width t.v else norm width (to_signed_int64 t)

let of_string ~width s =
  check_width width;
  let v =
    try Int64.of_string s
    with Failure _ -> invalid_arg ("Bitvec.of_string: malformed " ^ s)
  in
  let fits =
    if String.length s > 0 && s.[0] = '-' then
      width = 64
      || Int64.compare v (Int64.neg (Int64.shift_left 1L (width - 1))) >= 0
    else Int64.unsigned_compare v (mask width) <= 0
  in
  if not fits then
    invalid_arg (Printf.sprintf "Bitvec.of_string: %s overflows %d bits" s width);
  norm width v

let to_string ?(base = 10) t =
  let digits per = (t.w + per - 1) / per in
  let radix_str ~prefix ~per ~digit_bits =
    let n = digits per in
    let buf = Buffer.create (n + 2) in
    Buffer.add_string buf prefix;
    for i = n - 1 downto 0 do
      let d =
        Int64.to_int
          (Int64.logand
             (Int64.shift_right_logical t.v (i * digit_bits))
             (Int64.sub (Int64.shift_left 1L digit_bits) 1L))
      in
      Buffer.add_char buf "0123456789abcdef".[d]
    done;
    Buffer.contents buf
  in
  match base with
  | 10 -> Printf.sprintf "%Lu" t.v
  | 16 -> radix_str ~prefix:"0x" ~per:4 ~digit_bits:4
  | 8 -> radix_str ~prefix:"0o" ~per:3 ~digit_bits:3
  | 2 -> radix_str ~prefix:"0b" ~per:1 ~digit_bits:1
  | b -> invalid_arg (Printf.sprintf "Bitvec.to_string: base %d" b)

let pp ppf t = Format.fprintf ppf "%d'd%Lu" t.w t.v
let pp_hex ppf t = Format.fprintf ppf "%s" (to_string ~base:16 t)
