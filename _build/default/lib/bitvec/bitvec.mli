(** Fixed-width bitvectors, 1 to 64 bits.

    Microprograms manipulate fixed-length bitstrings (survey §2.1.7), so
    every register, memory word and ALU datum in the toolkit is a [Bitvec.t].
    Values are always kept normalised: bits above [width] are zero. *)

type t

(** Condition flags produced by arithmetic/shift operations, mirroring the
    status bits a horizontal microarchitecture exposes to branch tests. *)
type flags = {
  carry : bool;      (** carry / borrow out of the MSB *)
  overflow : bool;   (** two's-complement signed overflow *)
  zero : bool;       (** result is all zeros *)
  negative : bool;   (** MSB of the result *)
  shifted_out : bool (** last bit shifted out (the "UF" bit of SIMPL) *)
}

val no_flags : flags

(** {1 Construction} *)

val zero : int -> t
(** [zero w] is the all-zeros vector of width [w].
    @raise Invalid_argument if [w] is outside 1..64. *)

val ones : int -> t
(** All-ones vector of width [w]. *)

val of_int : width:int -> int -> t
(** Truncates to [width] bits; negative ints are two's-complement encoded. *)

val of_int64 : width:int -> int64 -> t

val of_bool : bool -> t
(** 1-bit vector. *)

val of_string : width:int -> string -> t
(** Accepts decimal, [0x...], [0o...], [0b...] and [-]decimal.
    @raise Invalid_argument on malformed input or overflow of [width]. *)

(** {1 Observation} *)

val width : t -> int
val to_int64 : t -> int64
val to_int : t -> int
(** @raise Invalid_argument if the value does not fit in an OCaml [int]. *)

val to_signed_int64 : t -> int64
(** Two's-complement interpretation. *)

val is_zero : t -> bool
val msb : t -> bool
val lsb : t -> bool
val bit : t -> int -> bool
val popcount : t -> int
val equal : t -> t -> bool
val compare_unsigned : t -> t -> int
val compare_signed : t -> t -> int

(** {1 Arithmetic}

    All binary operations require equal widths and raise [Invalid_argument]
    otherwise.  The [*_f] variants also return condition flags. *)

val add : t -> t -> t
val add_f : t -> t -> t * flags
val adc : t -> t -> bool -> t * flags
(** Add with carry-in. *)

val sub : t -> t -> t
val sub_f : t -> t -> t * flags
val neg : t -> t
val succ : t -> t
val pred : t -> t
val mul : t -> t -> t
val mul_f : t -> t -> t * flags
(** [overflow] is set when the full product does not fit the width. *)

val udiv : t -> t -> t
val urem : t -> t -> t
(** @raise Division_by_zero *)

(** {1 Logic} *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

(** {1 Shifts}

    Shift amounts are plain ints; shifting by [>= width] yields zero (or
    sign-fill for [shift_right_arith]).  The [_f] variants report the last
    bit shifted out in [shifted_out]. *)

val shift_left : t -> int -> t
val shift_left_f : t -> int -> t * flags
val shift_right : t -> int -> t
val shift_right_f : t -> int -> t * flags
val shift_right_arith : t -> int -> t
val rotate_left : t -> int -> t
val rotate_right : t -> int -> t

(** {1 Structure} *)

val extract : hi:int -> lo:int -> t -> t
(** Bits [hi..lo] inclusive, as a vector of width [hi-lo+1].
    @raise Invalid_argument unless [width > hi >= lo >= 0]. *)

val insert : hi:int -> lo:int -> into:t -> t -> t
(** Replace bits [hi..lo] of [into] with the given vector (whose width must
    be [hi-lo+1]). *)

val concat : t -> t -> t
(** [concat hi lo]: [hi] becomes the high-order bits.
    @raise Invalid_argument if the combined width exceeds 64. *)

val resize : width:int -> t -> t
(** Zero-extend or truncate. *)

val sign_extend : width:int -> t -> t

(** {1 Printing} *)

val to_string : ?base:int -> t -> string
(** [base] is 2, 8, 10 (default) or 16.  Non-decimal bases are zero-padded
    to the full width. *)

val pp : Format.formatter -> t -> unit
(** Prints as [w'dvalue], e.g. [16'd42]. *)

val pp_hex : Format.formatter -> t -> unit
