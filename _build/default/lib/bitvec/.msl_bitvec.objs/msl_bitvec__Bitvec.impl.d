lib/bitvec/bitvec.ml: Buffer Format Int64 Printf String
