(* Tests for the EMPL frontend (survey §2.2.2), including the paper's
   STACK extension-type example, with and without the MICROOP hint. *)

open Msl_bitvec
open Msl_machine
open Msl_mir
module Empl = Msl_empl
module Diag = Msl_util.Diag

let check_bool = Alcotest.(check bool)

let compile_run ?use_microops ?options ?(setup = fun _ -> ()) d src =
  let p = Empl.Compile.parse_compile ?use_microops d src in
  let sim, _, metrics = Pipeline.load ?options d p in
  setup sim;
  (match Sim.run sim with
  | Sim.Halted -> ()
  | Sim.Out_of_fuel -> Alcotest.fail "program did not halt");
  (sim, metrics)

(* The survey's stack example, verbatim in structure. *)
let stack_type =
  "TYPE STACK\n\
  \  DECLARE STK(16) FIXED; /* an array of 16 integers */\n\
  \  DECLARE STKPTR FIXED;\n\
  \  DECLARE VALUE FIXED;\n\
  \  INITIALLY DO; STKPTR = 0; END;\n\
  \  PUSH: OPERATION ACCEPTS (VALUE)\n\
  \        MICROOP: PUSH 3 0;\n\
  \        IF STKPTR = 16\n\
  \        THEN ERROR;\n\
  \        ELSE DO; STKPTR = STKPTR + 1; STK(STKPTR) = VALUE; END\n\
   END;\n\
  \  POP: OPERATION RETURNS (VALUE)\n\
  \        MICROOP: POP 3 0;\n\
  \        IF STKPTR = 0\n\
  \        THEN ERROR;\n\
  \        ELSE DO; VALUE = STK(STKPTR); STKPTR = STKPTR - 1; END\n\
   END;\n\
   ENDTYPE;\n\
   DECLARE ADDRESS_STK STACK;\n"

(* push 11, 22, 33; pop twice; result = 33 + 22 = 55 *)
let stack_program =
  stack_type
  ^ "DECLARE A FIXED;\n\
     DECLARE B FIXED;\n\
     ADDRESS_STK.PUSH(11);\n\
     ADDRESS_STK.PUSH(22);\n\
     ADDRESS_STK.PUSH(33);\n\
     A = ADDRESS_STK.POP();\n\
     B = ADDRESS_STK.POP();\n\
     A = A + B;\n"

(* EMPL has no output statement; programs store their result into a
   declared OUT array, and tests scan the static data region for it. *)
let stack_program_store =
  stack_type
  ^ "DECLARE A FIXED;\n\
     DECLARE B FIXED;\n\
     DECLARE OUT(1) FIXED;\n\
     ADDRESS_STK.PUSH(11);\n\
     ADDRESS_STK.PUSH(22);\n\
     ADDRESS_STK.PUSH(33);\n\
     A = ADDRESS_STK.POP();\n\
     B = ADDRESS_STK.POP();\n\
     A = A + B;\n\
     OUT(0) = A;\n"

(* Find the address of OUT by storing a sentinel first: instead, OUT is the
   last array allocated; simpler to check by scanning the data region. *)
let find_value_in_data d sim expected =
  let mem = Sim.memory sim in
  let base = max 0 (d.Desc.d_scratch_base - 256) in
  let rec scan a =
    if a >= d.Desc.d_scratch_base then false
    else if Bitvec.to_int (Memory.peek mem a) = expected then true
    else scan (a + 1)
  in
  scan base

(* the verbatim paper program (no OUT plumbing) compiles and halts on
   every machine *)
let test_stack_runs_everywhere () =
  List.iter
    (fun d ->
      let sim, _ = compile_run d stack_program in
      check_bool (d.Desc.d_name ^ " halts") true (Sim.cycles sim > 0))
    Machines.all

let test_stack_inlined () =
  (* machines without hardware push/pop: operators inline *)
  List.iter
    (fun d ->
      let sim, _ = compile_run d stack_program_store in
      check_bool
        (d.Desc.d_name ^ " stack result in data region")
        true
        (find_value_in_data d sim 55))
    [ Machines.hp3; Machines.h1 ]

let test_stack_hardware () =
  (* B17 has push/pop microoperations: the MICROOP path *)
  let d = Machines.b17 in
  let sim, _ = compile_run d stack_program_store in
  check_bool "B17 hardware stack result" true (find_value_in_data d sim 55)

let test_microop_shrinks_code () =
  (* the MICROOP hint must produce less code than inlining on B17 *)
  let d = Machines.b17 in
  let size use_microops =
    let p = Empl.Compile.parse_compile ~use_microops d stack_program_store in
    let _, _, m = Pipeline.compile d p in
    m.Pipeline.m_instructions
  in
  let hw = size true and sw = size false in
  check_bool (Printf.sprintf "hardware (%d) < inlined (%d)" hw sw) true (hw < sw);
  (* and the software path still computes the same answer *)
  let sim, _ = compile_run ~use_microops:false d stack_program_store in
  check_bool "inlined result matches" true (find_value_in_data d sim 55)

let test_stack_overflow_error () =
  (* pushing 17 times hits the ERROR branch, which halts before OUT is
     written *)
  let d = Machines.hp3 in
  let pushes =
    String.concat "" (List.init 17 (fun i ->
        Printf.sprintf "ADDRESS_STK.PUSH(%d);\n" (i + 1)))
  in
  let src =
    stack_type ^ "DECLARE OUT(1) FIXED;\n" ^ pushes ^ "OUT(0) = 999;\n"
  in
  let sim, _ = compile_run d src in
  check_bool "overflow halts before the sentinel write" false
    (find_value_in_data d sim 999)

(* -- general language features -------------------------------------------- *)

let run_arith d src expected =
  let full = "DECLARE OUT(1) FIXED;\n" ^ src ^ "OUT(0) = R;\n" in
  let sim, _ = compile_run d full in
  check_bool (Printf.sprintf "expected %d in data region" expected) true
    (find_value_in_data d sim expected)

let test_arithmetic () =
  let d = Machines.hp3 in
  run_arith d "DECLARE R FIXED;\nR = 6 * 7;\n" 42;
  run_arith d "DECLARE R FIXED;\nR = 100 / 7;\n" 14;
  run_arith d "DECLARE R FIXED;\nR = 100 MOD 7;\n" 2;
  run_arith d "DECLARE R FIXED;\nR = 12 & 10;\n" 8;
  run_arith d "DECLARE R FIXED;\nR = 12 | 3;\n" 15;
  run_arith d "DECLARE R FIXED;\nR = 12 XOR 10;\n" 6;
  run_arith d "DECLARE R FIXED;\nR = SHL(3, 4);\n" 48;
  run_arith d "DECLARE R FIXED;\nR = SHR(48, 3);\n" 6;
  run_arith d "DECLARE A FIXED;\nDECLARE R FIXED;\nA = 5;\nR = NEG(A);\nR = R + 10;\n" 5

let test_while_goto () =
  let d = Machines.hp3 in
  run_arith d
    "DECLARE I FIXED;\nDECLARE R FIXED;\nI = 10;\nR = 0;\n\
     DO WHILE (I > 0);\n  R = R + I;\n  I = I - 1;\nEND;\n"
    55;
  run_arith d
    "DECLARE I FIXED;\nDECLARE R FIXED;\nI = 0;\nR = 0;\n\
     LOOP: R = R + I;\nI = I + 1;\nIF I < 5 THEN GOTO LOOP;\n"
    10

let test_procedures () =
  let d = Machines.hp3 in
  run_arith d
    "DECLARE R FIXED;\n\
     DOUBLE: PROCEDURE;\n  R = R + R;\nEND;\n\
     R = 5;\nCALL DOUBLE;\nCALL DOUBLE;\n"
    20

let test_global_operator () =
  let d = Machines.hp3 in
  (* operators with two parameters, inlined twice *)
  let src =
    "DECLARE R FIXED;\nDECLARE T FIXED;\n\
     ADDBOTH: OPERATION ACCEPTS (X, Y) RETURNS (Z)\n\
    \  Z = X + Y;\n\
     END;\n\
     T = ADDBOTH(30, 12);\n\
     R = ADDBOTH(T, T);\n"
  in
  run_arith d src 84

let expect_diag phase f =
  match f () with
  | exception Diag.Error dg when dg.Diag.phase = phase -> ()
  | exception Diag.Error dg ->
      Alcotest.failf "wrong phase: %s" (Diag.to_string dg)
  | _ -> Alcotest.fail "expected a diagnostic"

let test_errors () =
  let d = Machines.hp3 in
  expect_diag Diag.Semantic (fun () ->
      ignore (compile_run d "X = 1;\n"));
  expect_diag Diag.Semantic (fun () ->
      ignore (compile_run d "DECLARE X FIXED;\nX = POP();\n"));
  expect_diag Diag.Semantic (fun () ->
      ignore (compile_run d "CALL NOWHERE;\n"));
  expect_diag Diag.Parsing (fun () ->
      ignore (Empl.Parser.parse "DECLARE X;\n"));
  (* recursive operator: inlining depth exceeded *)
  expect_diag Diag.Semantic (fun () ->
      ignore
        (compile_run d
           "DECLARE X FIXED;\n\
            LOOPY: OPERATION ACCEPTS (A) RETURNS (B)\n\
           \  B = LOOPY(A);\n\
            END;\n\
            X = LOOPY(1);\n"))

let test_allocator_engaged () =
  (* EMPL is the symbolic-variable language: the allocator must run *)
  let d = Machines.hp3 in
  let p =
    Empl.Compile.parse_compile d
      "DECLARE A FIXED;\nDECLARE B FIXED;\nA = 1;\nB = A + A;\n"
  in
  (* -O0: at -O1 this constant program folds to nothing and the allocator
     (correctly) has no vregs left to place *)
  let _, _, m =
    Pipeline.compile
      ~options:{ Pipeline.default_options with Pipeline.opt_level = 0 }
      d p
  in
  match m.Pipeline.m_alloc with
  | Some s -> check_bool "vregs allocated" true (s.Regalloc.vregs >= 2)
  | None -> Alcotest.fail "allocator did not run"

let () =
  Alcotest.run "empl"
    [
      ( "paper example",
        [
          Alcotest.test_case "stack runs everywhere" `Quick
            test_stack_runs_everywhere;
          Alcotest.test_case "stack inlined" `Quick test_stack_inlined;
          Alcotest.test_case "stack hardware microop" `Quick
            test_stack_hardware;
          Alcotest.test_case "microop shrinks code" `Quick
            test_microop_shrinks_code;
          Alcotest.test_case "stack overflow ERROR" `Quick
            test_stack_overflow_error;
        ] );
      ( "language",
        [
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "while and goto" `Quick test_while_goto;
          Alcotest.test_case "procedures" `Quick test_procedures;
          Alcotest.test_case "operators" `Quick test_global_operator;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "allocator engaged" `Quick test_allocator_engaged;
        ] );
    ]
