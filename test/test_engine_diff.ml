(* The engine differential oracle.

   The compiled closure engine (Simc) claims to be observationally
   identical to the cycle-accurate interpreter (Sim.step): same final
   pc, halt flag, cycle and instruction counts, trap and interrupt
   accounting, memory traffic, registers, flags and memory image — the
   whole [Sim.state_digest] — and the same diagnostics on the same
   inputs.  This oracle holds it to that over the entire corpus:

   - every examples/* program on every machine its language targets,
     at -O0 and -O1;
   - the S* benchmark kernels with live data (registers and memory),
     including an out-of-fuel stop mid-kernel;
   - hand-assembled microcode (the Handcoded reference programs);
   - seeded Workloads generators (YALLL corpus, EMPL pressure
     programs) across machines;
   - fuzzed mutants of every example source (the same Workloads.mutate
     corpus the robustness fuzzer runs) — whatever compiles must agree;
   - interrupt schedules against poll-point code (the Int_ack fallback
     boundary), and microtrap schedules in both trap modes.

   Agreement means byte-identical outcome strings: status + digest on a
   completed run, the diagnostic message on a raising one. *)

open Msl_machine
module Core = Msl_core
module Diag = Msl_util.Diag
module Toolkit = Core.Toolkit
module Workloads = Core.Workloads
module Handcoded = Core.Handcoded
module Pipeline = Msl_mir.Pipeline

let opt_options level =
  { Pipeline.default_options with Pipeline.opt_level = level }

(* -- the oracle ---------------------------------------------------------- *)

(* One engine's complete observable outcome, as a comparable string: the
   run status and full state digest when the program ran to a stop, the
   structured diagnostic when it raised.  [Toolkit.capture] is the same
   exception firewall the drivers use, so an engine that crashed with
   anything but a [Diag.Error] shows up as an [Internal] mismatch rather
   than killing the oracle. *)
let outcome ~engine ?setup ?trap_mode ?(fuel = 100_000)
    (c : Toolkit.compiled) =
  match
    Toolkit.capture (fun () ->
        let sim = Toolkit.load ?trap_mode c in
        (match setup with Some f -> f sim | None -> ());
        let status = Toolkit.exec ~engine ~fuel sim in
        let s =
          match status with
          | Sim.Halted -> "halted"
          | Sim.Out_of_fuel -> "out-of-fuel"
        in
        s ^ "\n" ^ Sim.state_digest sim)
  with
  | Ok s -> s
  | Error d -> "error: " ^ d.Diag.message

let engines_agree ?setup ?trap_mode ?fuel what c =
  let interp = outcome ~engine:Toolkit.Interp ?setup ?trap_mode ?fuel c in
  let compiled = outcome ~engine:Toolkit.Compiled ?setup ?trap_mode ?fuel c in
  Alcotest.(check string) what interp compiled

(* -- the example corpus -------------------------------------------------- *)

let machines_of = function
  | Toolkit.Yalll -> [ Machines.hp3; Machines.v11; Machines.b17 ]
  | Toolkit.Simpl -> [ Machines.hp3; Machines.h1; Machines.b17 ]
  | Toolkit.Empl -> [ Machines.hp3; Machines.b17 ]
  | Toolkit.Sstar -> [ Machines.hp3 ]

let example_corpus =
  let dir =
    if Sys.file_exists "../examples" then "../examples" else "examples"
  in
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.filter_map (fun f ->
         let lang =
           if Filename.check_suffix f ".yll" then Some Toolkit.Yalll
           else if Filename.check_suffix f ".simpl" then Some Toolkit.Simpl
           else if Filename.check_suffix f ".empl" then Some Toolkit.Empl
           else None
         in
         match lang with
         | None -> None
         | Some lang ->
             let ic = open_in_bin (Filename.concat dir f) in
             let src = really_input_string ic (in_channel_length ic) in
             close_in ic;
             Some (f, lang, src))

let test_examples () =
  Alcotest.(check bool)
    "corpus populated" true
    (List.length example_corpus >= 6);
  List.iter
    (fun (name, lang, src) ->
      List.iter
        (fun (d : Desc.t) ->
          List.iter
            (fun level ->
              let c =
                Toolkit.compile ~options:(opt_options level) lang d src
              in
              engines_agree
                (Printf.sprintf "examples/%s on %s -O%d" name d.Desc.d_name
                   level)
                c)
            [ 0; 1 ])
        (machines_of lang))
    example_corpus

(* -- the S* kernels with live data --------------------------------------- *)

let mpy_setup sim =
  Sim.set_reg_int sim "R1" 300;
  Sim.set_reg_int sim "R2" 9

let dot_setup sim =
  let mem = Sim.memory sim in
  Memory.load_ints mem ~base:1024 (List.init 16 (fun i -> (i * 37) land 255));
  Memory.load_ints mem ~base:2048 (List.init 16 (fun i -> (i * 11) land 255));
  Sim.set_reg_int sim "R1" 1024;
  Sim.set_reg_int sim "R2" 2048;
  Sim.set_reg_int sim "R3" 16

let kernels =
  [
    ("simpl_mpy", Toolkit.Simpl, Handcoded.simpl_mpy, mpy_setup);
    ("yalll_dot", Toolkit.Yalll, Handcoded.yalll_dot, dot_setup);
  ]

let test_kernels () =
  List.iter
    (fun (name, lang, src, setup) ->
      List.iter
        (fun (d : Desc.t) ->
          let c = Toolkit.compile lang d src in
          engines_agree
            (Printf.sprintf "%s on %s" name d.Desc.d_name)
            ~setup c;
          (* stopping mid-kernel must leave both engines in the same
             place: fuel accounting is part of the contract (the drivers
             turn Out_of_fuel into an exit code) *)
          engines_agree
            (Printf.sprintf "%s on %s, out of fuel" name d.Desc.d_name)
            ~setup ~fuel:50 c)
        (machines_of lang))
    kernels

let test_handcoded () =
  List.iter
    (fun (name, d, src, setup) ->
      let c = Toolkit.assemble d src in
      engines_agree ("assembled " ^ name) ?setup c)
    [
      ("translit_hp3", Machines.hp3, Handcoded.translit_hp3, None);
      ("translit_v11", Machines.v11, Handcoded.translit_v11, None);
      ("fpmul_h1", Machines.h1, Handcoded.fpmul_h1, None);
      ("mpy_h1", Machines.h1, Handcoded.mpy_h1, Some mpy_setup);
      ("dot_hp3", Machines.hp3, Handcoded.dot_hp3, Some dot_setup);
    ]

(* -- seeded generator corpus --------------------------------------------- *)

let test_generated_yalll () =
  List.iter
    (fun seed ->
      let src = Workloads.yalll_program ~seed ~len:(20 + (seed mod 4 * 15)) in
      List.iter
        (fun (d : Desc.t) ->
          let c = Toolkit.compile Toolkit.Yalll d src in
          engines_agree
            (Printf.sprintf "yalll_program seed %d on %s" seed d.Desc.d_name)
            c)
        (machines_of Toolkit.Yalll))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_generated_empl () =
  List.iter
    (fun seed ->
      let src = Workloads.pressure_program ~seed ~nvars:6 ~nops:24 in
      List.iter
        (fun (d : Desc.t) ->
          let c = Toolkit.compile Toolkit.Empl d src in
          engines_agree
            (Printf.sprintf "pressure_program seed %d on %s" seed
               d.Desc.d_name)
            c)
        (machines_of Toolkit.Empl))
    [ 11; 12; 13; 14 ]

(* -- fuzzed mutants (the robustness fuzzer's own corpus) ----------------- *)

let fuzz_example (name, lang, src) =
  QCheck.Test.make ~count:60
    ~name:(Printf.sprintf "examples/%s mutants agree" name)
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed; String.length src; 131 |] in
      let src = Workloads.mutate rng src in
      match
        Toolkit.capture (fun () -> Toolkit.compile lang Machines.hp3 src)
      with
      | Error _ -> true (* a mutant the frontend rejects is out of scope *)
      | Ok c ->
          outcome ~engine:Toolkit.Interp ~fuel:20_000 c
          = outcome ~engine:Toolkit.Compiled ~fuel:20_000 c)

(* -- interrupts and microtraps ------------------------------------------- *)

(* Poll-point code contains Int_ack words — the compiled engine's
   interpreter-fallback boundary.  The oracle pins the whole
   acknowledgement story: polls counted, latency accounted, pending
   state cleared identically on both sides of the boundary. *)
let test_interrupts () =
  let options = { (opt_options 1) with Pipeline.poll = true } in
  List.iter
    (fun (name, lang, src, setup, d) ->
      let c = Toolkit.compile ~options lang d src in
      (* the poll-compiled program must actually contain fallback words,
         or this test would never cross the engine boundary it's about *)
      let probe = Simc.translate (Toolkit.load c) in
      Alcotest.(check bool)
        (name ^ " has Int_ack fallback words")
        true
        (Simc.fallback_words probe > 0);
      List.iter
        (fun sched ->
          engines_agree
            (Printf.sprintf "%s on %s, interrupts at [%s]" name
               d.Desc.d_name
               (String.concat ";" (List.map string_of_int sched)))
            ~setup:(fun sim ->
              setup sim;
              Sim.schedule_interrupts sim sched)
            c)
        [
          [ 5 ]; [ 1; 2; 3 ]; [ 100; 200; 300; 1000 ];
          Workloads.interrupt_schedule ~seed:42 ~n:12 ~max_cycle:4000;
        ])
    [
      ("simpl_mpy", Toolkit.Simpl, Handcoded.simpl_mpy, mpy_setup,
       Machines.hp3);
      ("yalll_dot", Toolkit.Yalll, Handcoded.yalll_dot, dot_setup,
       Machines.b17);
    ]

let test_microtraps () =
  let c = Toolkit.compile Toolkit.Yalll Machines.hp3 Handcoded.yalll_dot in
  let absent_setup sim =
    dot_setup sim;
    let mem = Sim.memory sim in
    Memory.mark_absent mem ~page:(Memory.page_of mem 1024);
    Memory.mark_absent mem ~page:(Memory.page_of mem 2048)
  in
  (* Restart mode: both engines take the trap, pay the fault penalty,
     service the page and restart at the same pc *)
  engines_agree "dot with absent pages, Restart" ~trap_mode:Sim.Restart
    ~setup:absent_setup c;
  (* Fault_is_error: both engines surface the same located diagnostic *)
  engines_agree "dot with absent pages, Fault_is_error"
    ~trap_mode:Sim.Fault_is_error ~setup:absent_setup c

(* -- one translation, many runs (the Sim.reset contract) ------------------ *)

let test_reset_reuses_translation () =
  let c = Toolkit.compile Toolkit.Yalll Machines.hp3 Handcoded.yalll_dot in
  let sim = Toolkit.load c in
  let engine = Simc.translate sim in
  let once () =
    dot_setup sim;
    match Simc.run engine with
    | Sim.Halted -> Sim.state_digest sim
    | Sim.Out_of_fuel -> Alcotest.fail "kernel ran out of fuel"
  in
  let first = once () in
  Sim.reset sim;
  let second = once () in
  Alcotest.(check string)
    "two runs from one translation are byte-identical" first second;
  (* and both match a fresh interpreter run *)
  let sim_i = Toolkit.load c in
  dot_setup sim_i;
  ignore (Sim.run sim_i);
  Alcotest.(check string)
    "and match the interpreter" (Sim.state_digest sim_i) second

let () =
  Alcotest.run "engine_diff"
    [
      ( "corpus",
        [
          Alcotest.test_case "every examples/* on every machine, -O0/-O1"
            `Quick test_examples;
          Alcotest.test_case "S* kernels with live data (+ out-of-fuel)"
            `Quick test_kernels;
          Alcotest.test_case "hand-assembled reference microcode" `Quick
            test_handcoded;
        ] );
      ( "generated",
        [
          Alcotest.test_case "seeded YALLL corpus x 3 machines" `Quick
            test_generated_yalll;
          Alcotest.test_case "EMPL pressure programs x 2 machines" `Quick
            test_generated_empl;
        ] );
      ( "fuzzed",
        List.map
          (fun e -> QCheck_alcotest.to_alcotest (fuzz_example e))
          example_corpus );
      ( "boundaries",
        [
          Alcotest.test_case "interrupt schedules at poll points" `Quick
            test_interrupts;
          Alcotest.test_case "microtraps in both trap modes" `Quick
            test_microtraps;
          Alcotest.test_case "Sim.reset reuses a translation" `Quick
            test_reset_reuses_translation;
        ] );
    ]
