(* The microlint analyzer's own oracle.

   Two obligations, mirroring the translation-validation claim in
   lib/mir/lint.mli:

   - soundness of the *silence*: zero findings on every honestly
     compiled program — all examples/* on every machine they target at
     both -O0 and -O1, seeded whole-program corpora, and seeded blocks
     through all four compaction algorithms;
   - sensitivity: 100% detection of injected write-write races and
     field overflows (Workloads.inject_defect) on all four machines.

   Plus direct unit tests of each analysis on crafted inputs, and of the
   finding renderers. *)

open Msl_bitvec
open Msl_machine
open Msl_mir
module Core = Msl_core
module Toolkit = Msl_core.Toolkit
module W = Msl_core.Workloads

let show fs =
  String.concat "; " (List.map (fun f -> Fmt.str "%a" Diag.pp_finding f) fs)

(* Render the findings into the assertion so a failure names the exact
   false positive. *)
let check_clean what fs = Alcotest.(check string) what "" (show fs)

let has code fs = List.exists (fun f -> f.Diag.f_code = code) fs

let check_has what code fs =
  Alcotest.(check bool)
    (Printf.sprintf "%s reports %s [%s]" what code (show fs))
    true (has code fs)

(* -- honest compiles: no false positives -------------------------------- *)

let compile_with_mir ?(opt_level = 1) ?(poll = false) lang d src =
  (* The first observed pass is the frontend's raw MIR — the program the
     MIR-level checks should judge, before the optimizer rewrites it. *)
  let mir = ref None in
  let observe _pass p = if !mir = None then mir := Some p in
  let options = { Pipeline.default_options with opt_level; poll } in
  let c = Toolkit.compile ~options ~observe lang d src in
  (c, !mir)

let lint_full (c, mir) =
  Lint.run ?mir ~labels:c.Toolkit.c_labels c.Toolkit.c_machine
    c.Toolkit.c_insts

let example_languages =
  [ (".yll", (Toolkit.Yalll, [ Machines.hp3; Machines.v11; Machines.b17 ]));
    (".simpl", (Toolkit.Simpl, [ Machines.hp3; Machines.h1; Machines.b17 ]));
    (".empl", (Toolkit.Empl, [ Machines.hp3; Machines.b17 ])) ]

let example_sources () =
  let dir =
    if Sys.file_exists "../examples" then "../examples" else "examples"
  in
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.filter_map (fun f ->
         List.find_map
           (fun (ext, (lang, machines)) ->
             if Filename.check_suffix f ext then
               Some (f, lang, machines, Filename.concat dir f)
             else None)
           example_languages)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_honest_examples () =
  let sources = example_sources () in
  Alcotest.(check bool)
    "found the example corpus" true
    (List.length sources >= 6);
  List.iter
    (fun (name, lang, machines, path) ->
      let src = read_file path in
      List.iter
        (fun d ->
          List.iter
            (fun opt_level ->
              check_clean
                (Printf.sprintf "%s on %s at -O%d" name d.Desc.d_name
                   opt_level)
                (lint_full (compile_with_mir ~opt_level lang d src)))
            [ 0; 1 ])
        machines)
    sources

let test_honest_generated () =
  List.iter
    (fun seed ->
      let src = W.yalll_program ~seed ~len:14 in
      List.iter
        (fun d ->
          List.iter
            (fun opt_level ->
              check_clean
                (Printf.sprintf "yalll seed %d on %s at -O%d" seed
                   d.Desc.d_name opt_level)
                (lint_full (compile_with_mir ~opt_level Toolkit.Yalll d src)))
            [ 0; 1 ])
        [ Machines.hp3; Machines.v11; Machines.b17 ])
    [ 1; 2; 3; 4; 5; 6 ];
  List.iter
    (fun seed ->
      let src = W.pressure_program ~seed ~nvars:10 ~nops:16 in
      List.iter
        (fun d ->
          check_clean
            (Printf.sprintf "pressure seed %d on %s" seed d.Desc.d_name)
            (lint_full (compile_with_mir Toolkit.Empl d src)))
        [ Machines.hp3; Machines.b17 ])
    [ 1; 2; 3; 4 ]

(* Every algorithm's schedule must pass the independent race re-check —
   the translation-validation core, against a checker sharing no code
   with Compaction.check. *)
let algos =
  [ Compaction.Sequential; Compaction.Fcfs; Compaction.Critical_path;
    Compaction.Optimal ]

let block_machines = [ Machines.hp3; Machines.h1; Machines.b17 ]

let wrap_groups groups =
  List.map (fun g -> { Inst.ops = g; next = Inst.Next }) groups
  @ [ { Inst.ops = []; next = Inst.Halt } ]

let test_honest_blocks () =
  List.iter
    (fun seed ->
      let d = List.nth block_machines (seed mod 3) in
      let n = 4 + (seed * 7 mod 24) in
      let p_dep = seed * 13 mod 95 in
      let ops = W.compaction_block d ~seed ~n ~p_dep in
      List.iter
        (fun chain ->
          List.iter
            (fun algo ->
              let r = Compaction.compact ~chain ~algo d ops in
              check_clean
                (Printf.sprintf "block seed %d %s %s chain=%b" seed
                   d.Desc.d_name (Compaction.algo_name algo) chain)
                (Lint.validate_machine d (wrap_groups r.Compaction.groups)))
            algos)
        [ true; false ])
    (List.init 24 (fun i -> i + 1))

(* -- injected defects: 100% detection ------------------------------------ *)

(* A mutation corpus per machine.  The block generator has no v11
   templates, so v11 rides the YALLL whole-program corpus — which also
   keeps branchy words (not just straight-line blocks) in the mix.
   Compiled at -O0: the optimizer folds the straight-line generator
   programs down to a handful of constant loads of distinct registers,
   leaving nothing for the race injector to merge. *)
let mutation_corpus d =
  if d.Desc.d_name = Machines.v11.Desc.d_name then
    List.map
      (fun seed ->
        let src = W.yalll_program ~seed ~len:14 in
        let options = { Pipeline.default_options with opt_level = 0 } in
        let c = Toolkit.compile ~options Toolkit.Yalll d src in
        (Printf.sprintf "yalll seed %d" seed, c.Toolkit.c_insts))
      [ 1; 2; 3; 4; 5; 6 ]
  else
    List.map
      (fun seed ->
        let ops = W.compaction_block d ~seed ~n:16 ~p_dep:40 in
        let r =
          Compaction.compact ~chain:true ~algo:Compaction.Critical_path d ops
        in
        (Printf.sprintf "block seed %d" seed, wrap_groups r.Compaction.groups))
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let all_machines = [ Machines.hp3; Machines.h1; Machines.v11; Machines.b17 ]

(* Every mutant [inject_defect] produces must be caught by the named
   analysis code — detection below 100% is a test failure, and a corpus
   offering no injection site at all on some machine is too. *)
let check_detection d defect code =
  let injected = ref 0 in
  List.iter
    (fun (what, insts) ->
      List.iter
        (fun seed ->
          match W.inject_defect d ~seed defect insts with
          | None -> ()
          | Some mutant ->
              incr injected;
              let fs = Lint.validate_machine d mutant in
              check_has
                (Printf.sprintf "%s mutant of %s (seed %d) on %s"
                   (W.defect_name defect) what seed d.Desc.d_name)
                code
                (Diag.errors fs))
        [ 0; 1; 2; 3; 4 ])
    (mutation_corpus d);
  Alcotest.(check bool)
    (Printf.sprintf "%s corpus offers %s sites" d.Desc.d_name
       (W.defect_name defect))
    true (!injected > 0)

let test_detect_race () =
  List.iter (fun d -> check_detection d W.D_race_ww "race-ww") all_machines

let test_detect_overflow () =
  List.iter
    (fun d -> check_detection d W.D_field_overflow "field-overflow")
    all_machines

(* The remaining defects are not promised 100% static detection (a
   dropped dependence edge reorders computation without any intra-word
   hazard — experiment L1 measures how often each slips through); the
   analyzer must merely survive them with every analysis enabled. *)
let test_mutants_never_crash () =
  let config = { Lint.latency_budget = Some 64; pedantic = true } in
  List.iter
    (fun d ->
      List.iter
        (fun (_, insts) ->
          List.iter
            (fun defect ->
              List.iter
                (fun seed ->
                  match W.inject_defect d ~seed defect insts with
                  | None -> ()
                  | Some mutant -> ignore (Lint.run ~config d mutant))
                [ 0; 1; 2 ])
            W.all_defects)
        (mutation_corpus d))
    all_machines

(* -- unit tests: MIR analyses -------------------------------------------- *)

let prog main =
  { Mir.main; procs = []; vreg_names = []; next_vreg = 8 }

let k16 n = Mir.R_const (Bitvec.of_int ~width:16 n)

let test_uninit () =
  let read_v0 = Mir.assign (Mir.Virt 1) (Mir.R_copy (Mir.Virt 0)) in
  let p =
    prog [ { Mir.b_label = "entry"; b_stmts = [ read_v0 ]; b_term = Mir.Halt } ]
  in
  check_has "never-assigned vreg" "uninit-read" (Lint.check_uninit p);
  (* may-analysis: assigned on one incoming path is enough *)
  let p2 =
    prog
      [ { Mir.b_label = "entry"; b_stmts = [];
          b_term = Mir.If (Mir.Int_pending, "yes", "join") };
        { Mir.b_label = "yes"; b_stmts = [ Mir.assign (Mir.Virt 0) (k16 1) ];
          b_term = Mir.Goto "join" };
        { Mir.b_label = "join"; b_stmts = [ read_v0 ]; b_term = Mir.Halt } ]
  in
  check_clean "one-path assignment (may-join)" (Lint.check_uninit p2);
  (* physical registers are console-initialized machine state *)
  let p3 =
    prog
      [ { Mir.b_label = "entry";
          b_stmts = [ Mir.assign (Mir.Virt 0) (Mir.R_copy (Mir.Phys 1)) ];
          b_term = Mir.Halt } ]
  in
  check_clean "physical registers exempt" (Lint.check_uninit p3);
  (* unreachable blocks are not checked *)
  let p4 =
    prog
      [ { Mir.b_label = "entry"; b_stmts = []; b_term = Mir.Halt };
        { Mir.b_label = "island"; b_stmts = [ read_v0 ]; b_term = Mir.Halt } ]
  in
  check_clean "unreachable blocks exempt" (Lint.check_uninit p4)

let test_bindings () =
  let d = Machines.hp3 in
  let nregs = Array.length d.Desc.d_regs in
  let p bad =
    prog
      [ { Mir.b_label = "entry";
          b_stmts = [ Mir.assign (Mir.Phys bad) (k16 0) ];
          b_term = Mir.Halt } ]
  in
  check_has "out-of-range register id" "bad-reg"
    (Lint.check_bindings d (p (nregs + 3)));
  check_clean "in-range register id" (Lint.check_bindings d (p 0))

(* -- unit tests: machine analyses ---------------------------------------- *)

let an_op d = List.hd (W.compaction_block d ~seed:1 ~n:4 ~p_dep:0)

let test_dead () =
  let d = Machines.hp3 in
  let op = an_op d in
  check_has "unreachable word with an op" "dead-code"
    (Lint.check_dead d
       [ { Inst.ops = []; next = Inst.Jump 2 };
         { Inst.ops = [ op ]; next = Inst.Next };
         { Inst.ops = []; next = Inst.Halt } ]);
  check_clean "empty padding words are inert"
    (Lint.check_dead d
       [ { Inst.ops = []; next = Inst.Jump 2 };
         { Inst.ops = []; next = Inst.Next };
         { Inst.ops = []; next = Inst.Halt } ]);
  check_has "branch target outside the program" "bad-target"
    (Lint.check_dead d
       [ { Inst.ops = []; next = Inst.Jump 9 };
         { Inst.ops = []; next = Inst.Halt } ]);
  check_has "falling off the control store" "fall-off-end"
    (Lint.check_dead d [ { Inst.ops = []; next = Inst.Next } ])

let test_latency () =
  let d = Machines.hp3 in
  let dir =
    if Sys.file_exists "../examples" then "../examples" else "examples"
  in
  let src = read_file (Filename.concat dir "sum_loop.yll") in
  let compiled ~poll =
    let c, _ = compile_with_mir ~poll Toolkit.Yalll d src in
    (c.Toolkit.c_labels, c.Toolkit.c_insts)
  in
  let labels, insts = compiled ~poll:false in
  let fs = Lint.check_latency ~labels ~budget:3 d insts in
  Alcotest.(check bool)
    (Printf.sprintf "unpolled loop breaks a 3-cycle budget [%s]" (show fs))
    true
    (has "poll-unbounded" fs || has "poll-gap" fs);
  let labels, insts = compiled ~poll:true in
  check_clean "polled loop meets a generous budget"
    (Lint.check_latency ~labels ~budget:10_000 d insts)

let test_vertical () =
  (* two distinct ops packed into one word of the vertical b17 *)
  let d = Machines.b17 in
  let ops = W.compaction_block d ~seed:3 ~n:6 ~p_dep:0 in
  let distinct =
    match ops with
    | a :: rest -> (
        match
          List.find_opt
            (fun b ->
              not
                (a.Inst.op_t.Desc.t_name = b.Inst.op_t.Desc.t_name
                && a.Inst.op_args = b.Inst.op_args))
            rest
        with
        | Some b -> [ a; b ]
        | None -> Alcotest.fail "seeded block has no two distinct ops")
    | [] -> Alcotest.fail "seeded block is empty"
  in
  check_has "multi-op word on a vertical machine" "vertical-packed"
    (Lint.check_races d
       [ { Inst.ops = distinct; next = Inst.Halt } ])

(* -- unit tests: findings and renderers ---------------------------------- *)

let test_renderers () =
  let f =
    Diag.finding ~severity:Diag.Warning
      ~loc:(Diag.L_word { addr = 4; owner = Some "loop" })
      ~code:"race-ww" "double write of %s" "x"
  in
  Alcotest.(check string) "human line"
    "warning[race-ww] word 4 (block loop): double write of x"
    (Fmt.str "%a" Diag.pp_finding f);
  Alcotest.(check string) "json"
    "{\"code\":\"race-ww\",\"severity\":\"warning\",\"loc\":{\"kind\":\"word\",\
     \"addr\":4,\"owner\":\"loop\"},\"message\":\"double write of x\"}"
    (Diag.finding_to_json f);
  Alcotest.(check string) "sexp"
    "(finding (code race-ww) (severity warning) (loc (word 4 \"loop\")) \
     (message \"double write of x\"))"
    (Diag.finding_to_sexp f);
  Alcotest.(check string) "empty json report"
    "{\"machine\":\"HP3\",\"errors\":0,\"warnings\":0,\"findings\":[]}"
    (Diag.report_json ~machine:"HP3" []);
  (* block findings sort before word findings *)
  let g =
    Diag.finding
      ~loc:(Diag.L_block { block = "b"; stmt = Some 1 })
      ~code:"uninit-read" "v0 read before assignment"
  in
  Alcotest.(check string) "sort: MIR provenance first"
    "error[uninit-read] block b stmt 1: v0 read before assignment"
    (Fmt.str "%a" Diag.pp_finding (List.hd (Diag.by_location [ f; g ])));
  (* escaping in both structured forms *)
  let e = Diag.finding ~code:"x" "a \"quoted\"\nline" in
  Alcotest.(check string) "json escaping"
    "{\"code\":\"x\",\"severity\":\"error\",\"loc\":null,\"message\":\"a \
     \\\"quoted\\\"\\nline\"}"
    (Diag.finding_to_json e)

let test_compiler_error () =
  match Toolkit.compile Toolkit.Yalll Machines.hp3 "?? not yalll ??" with
  | _ -> Alcotest.fail "nonsense source compiled"
  | exception Msl_util.Diag.Error d ->
      let f = Diag.of_compiler_error d in
      Alcotest.(check bool)
        (Printf.sprintf "phase becomes the finding code (got %s)" f.Diag.f_code)
        true
        (List.mem f.Diag.f_code [ "lex"; "parse" ]);
      Alcotest.(check bool) "severity is error" true
        (f.Diag.f_severity = Diag.Error)

let () =
  Alcotest.run "lint"
    [
      ( "honest programs are clean",
        [
          Alcotest.test_case "every examples/* at -O0 and -O1" `Quick
            test_honest_examples;
          Alcotest.test_case "seeded YALLL and EMPL corpora" `Quick
            test_honest_generated;
          Alcotest.test_case "seeded blocks x 4 algos x chain on/off" `Quick
            test_honest_blocks;
        ] );
      ( "injected defects are caught",
        [
          Alcotest.test_case "write-write races: 100% on all machines" `Quick
            test_detect_race;
          Alcotest.test_case "field overflows: 100% on all machines" `Quick
            test_detect_overflow;
          Alcotest.test_case "all defects: analyzer never crashes" `Quick
            test_mutants_never_crash;
        ] );
      ( "analyses",
        [
          Alcotest.test_case "uninitialized reads" `Quick test_uninit;
          Alcotest.test_case "register bindings" `Quick test_bindings;
          Alcotest.test_case "dead code and bad targets" `Quick test_dead;
          Alcotest.test_case "interrupt-poll latency" `Quick test_latency;
          Alcotest.test_case "vertical packing" `Quick test_vertical;
        ] );
      ( "findings",
        [
          Alcotest.test_case "renderers and ordering" `Quick test_renderers;
          Alcotest.test_case "compiler errors as findings" `Quick
            test_compiler_error;
        ] );
    ]
