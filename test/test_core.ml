(* Tests for the core library: the survey matrix, hand-coded baselines,
   the MAC-16 emulator, and — most importantly — the *shape claims* every
   experiment must reproduce (EXPERIMENTS.md records the numbers; these
   tests pin the directions). *)

open Msl_bitvec
open Msl_machine
module Core = Msl_core
module Compaction = Msl_mir.Compaction
module Regalloc = Msl_mir.Regalloc

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -- T1: the matrix reproduces the survey's tallies ------------------------- *)

let test_t1_tallies () =
  check_int "ten languages" 10 (List.length Core.Language_info.languages);
  check_int "eight sequential" 8 Core.Language_info.sequential_count;
  check_int "two explicit" 2 Core.Language_info.explicit_count;
  check_int "three symbolic" 3 Core.Language_info.symbolic_count;
  check_int "no parameter passing" 0 Core.Language_info.parameter_passing_count;
  check_int "interrupts neglected" 0 Core.Language_info.interrupts_count;
  check_int "two verification-oriented" 2 Core.Language_info.verification_count;
  check_bool "tables render" true
    (String.length (Msl_util.Tbl.render (Core.Language_info.to_table ())) > 0)

(* -- hand-coded baselines are correct ------------------------------------------ *)

let test_handcoded_translit () =
  let d = Machines.hp3 in
  let c = Core.Toolkit.assemble d Core.Handcoded.translit_hp3 in
  let sim =
    Core.Toolkit.run c ~setup:(fun sim ->
        let mem = Sim.memory sim in
        for i = 0 to 127 do
          Memory.poke mem (500 + i) (Bitvec.of_int ~width:16 (i + 1))
        done;
        Memory.load_ints mem ~base:300 [ 97; 98; 99; 0 ];
        Sim.set_reg_int sim "DB" 300;
        Sim.set_reg_int sim "SB" 500)
  in
  List.iteri
    (fun i e ->
      check_int "hand translit" e
        (Bitvec.to_int (Memory.peek (Sim.memory sim) (300 + i))))
    [ 98; 99; 100; 0 ]

let test_handcoded_mpy () =
  let d = Machines.h1 in
  let c = Core.Toolkit.assemble d Core.Handcoded.mpy_h1 in
  let sim =
    Core.Toolkit.run c ~setup:(fun sim ->
        Sim.set_reg_int sim "R1" 13;
        Sim.set_reg_int sim "R2" 11)
  in
  check_int "hand mpy" 143 (Bitvec.to_int (Sim.get_reg sim "R3"))

(* compiled and hand-written fpmul agree on many inputs (differential) *)
let test_fpmul_parity () =
  let d = Machines.h1 in
  let compiled = Core.Toolkit.compile Core.Toolkit.Simpl d Core.Handcoded.simpl_fpmul in
  let hand = Core.Toolkit.assemble d Core.Handcoded.fpmul_h1 in
  let exp_mask = Int64.shift_left 0x1FFFL 50 in
  let man_mask = Int64.sub (Int64.shift_left 1L 50) 1L in
  let run c a b =
    let sim =
      Core.Toolkit.run c ~setup:(fun sim ->
          Sim.set_reg sim "R1" (Bitvec.of_int64 ~width:64 a);
          Sim.set_reg sim "R2" (Bitvec.of_int64 ~width:64 b);
          Sim.set_reg sim "R8" (Bitvec.of_int64 ~width:64 exp_mask);
          Sim.set_reg sim "R9" (Bitvec.of_int64 ~width:64 man_mask))
    in
    Bitvec.to_int64 (Sim.get_reg sim "R3")
  in
  let mk e m = Int64.logor (Int64.shift_left (Int64.of_int e) 50) m in
  List.iter
    (fun (a, b) ->
      Alcotest.(check int64)
        "fpmul parity" (run hand a b) (run compiled a b))
    [ (mk 3 5L, mk 4 9L); (mk 100 12345L, mk 7 98765L); (mk 0 0L, mk 1 7L);
      (mk 1 man_mask, mk 1 1L) ]

(* -- the emulator substrate ------------------------------------------------------ *)

let test_emulator_basics () =
  (* 6*7 by repeated addition at the macro level *)
  let prog =
    Core.Emulator.link
      [
        Core.Emulator.I (Core.Emulator.Loadi 0);
        Core.Emulator.I (Core.Emulator.Store 20);
        Core.Emulator.L "loop";
        Core.Emulator.I (Core.Emulator.Load 20);
        Core.Emulator.I (Core.Emulator.Add 21);
        Core.Emulator.I (Core.Emulator.Store 20);
        Core.Emulator.I (Core.Emulator.Decm 22);
        Core.Emulator.I (Core.Emulator.Load 22);
        Core.Emulator.Iref ((fun a -> Core.Emulator.Jnz a), "loop");
        Core.Emulator.I (Core.Emulator.Load 20);
        Core.Emulator.I Core.Emulator.Halt;
      ]
  in
  let sim =
    Core.Emulator.run prog ~setup:(fun sim ->
        Memory.load_ints (Sim.memory sim) ~base:21 [ 6; 7 ])
  in
  check_int "macro 6*7" 42 (Core.Emulator.acc sim)

let test_emulator_indirect () =
  let prog =
    Core.Emulator.link
      [
        Core.Emulator.I (Core.Emulator.Loadx 30);  (* ACC := mem[mem[30]] *)
        Core.Emulator.I (Core.Emulator.Stox 31);  (* mem[mem[31]] := ACC *)
        Core.Emulator.I (Core.Emulator.Incm 30);
        Core.Emulator.I Core.Emulator.Halt;
      ]
  in
  let sim =
    Core.Emulator.run prog ~setup:(fun sim ->
        let mem = Sim.memory sim in
        Memory.load_ints mem ~base:30 [ 50; 60 ];
        Memory.load_ints mem ~base:50 [ 77 ])
  in
  check_int "indirect copy" 77
    (Bitvec.to_int (Memory.peek (Sim.memory sim) 60));
  check_int "incm" 51 (Bitvec.to_int (Memory.peek (Sim.memory sim) 30))

(* -- experiment shape claims --------------------------------------------------------- *)

let test_t2_shape () =
  (* hand-written code is never larger than block-at-a-time compiled
     code (-O1); the superoptimizer (-O2) never loses to -O1 — it may
     even beat the hand code, as on the V11 transliterate loop — and
     the worst -O2 case stays strictly below the +100% that -O1 pays
     on the multiply loop *)
  let rows = Core.Experiments.t2_rows () in
  List.iter
    (fun r ->
      let tag fmt =
        Printf.ksprintf
          (fun s ->
            Printf.sprintf "%s on %s: %s" r.Core.Experiments.t2_name
              r.Core.Experiments.t2_machine s)
          fmt
      in
      check_bool
        (tag "hand (%d) <= O1 (%d)" r.Core.Experiments.t2_hand
           r.Core.Experiments.t2_compiled)
        true
        (r.Core.Experiments.t2_hand <= r.Core.Experiments.t2_compiled);
      check_bool
        (tag "O2 (%d) <= O1 (%d)" r.Core.Experiments.t2_o2
           r.Core.Experiments.t2_compiled)
        true
        (r.Core.Experiments.t2_o2 <= r.Core.Experiments.t2_compiled);
      (* strictly below doubling: o2 - hand < hand *)
      check_bool
        (tag "O2 overhead below +100%% (%d vs hand %d)"
           r.Core.Experiments.t2_o2 r.Core.Experiments.t2_hand)
        true
        (r.Core.Experiments.t2_o2 - r.Core.Experiments.t2_hand
        < r.Core.Experiments.t2_hand))
    rows;
  (* the headline case: the H1 multiply loop strictly improves under -O2 *)
  let mpy =
    List.find
      (fun r ->
        r.Core.Experiments.t2_machine = "H1"
        && r.Core.Experiments.t2_name = "multiply loop (SIMPL)")
      rows
  in
  check_bool "mpy H1: O2 strictly beats O1" true
    (mpy.Core.Experiments.t2_o2 < mpy.Core.Experiments.t2_compiled)

let test_t3_shape () =
  (* HP3 beats V11 on both cycles and words *)
  match Core.Experiments.t3_rows () with
  | [ hp; vax ] ->
      check_bool "HP3 fewer cycles" true
        (hp.Core.Experiments.t3_cycles < vax.Core.Experiments.t3_cycles);
      check_bool "HP3 no more words" true
        (hp.Core.Experiments.t3_words <= vax.Core.Experiments.t3_words)
  | _ -> Alcotest.fail "expected two T3 rows"

let test_t4_shape () =
  List.iter
    (fun r ->
      let w a = List.assoc a r.Core.Experiments.t4_words in
      let seq = w Compaction.Sequential in
      let fcfs = w Compaction.Fcfs in
      let cp = w Compaction.Critical_path in
      let opt = w Compaction.Optimal in
      check_bool "fcfs <= seq" true (fcfs <= seq);
      check_bool "opt <= cp" true (opt <= cp);
      check_bool "opt <= fcfs" true (opt <= fcfs);
      check_bool "some packing" true (cp < seq))
    (Core.Experiments.t4_rows ())

let test_t5_shape () =
  let rows = Core.Experiments.t5_rows () in
  (* spills decrease monotonically with register count, per strategy *)
  List.iter
    (fun strategy ->
      let mine =
        List.filter (fun r -> r.Core.Experiments.t5_strategy = strategy) rows
      in
      let rec monotone = function
        | a :: (b :: _ as rest) ->
            check_bool "spills decrease" true
              (b.Core.Experiments.t5_spilled <= a.Core.Experiments.t5_spilled);
            monotone rest
        | _ -> ()
      in
      monotone mine)
    [ Regalloc.First_fit; Regalloc.Priority ];
  (* at every size, priority never has more traffic than first-fit *)
  List.iter
    (fun n ->
      let get s =
        List.find
          (fun r ->
            r.Core.Experiments.t5_nregs = n && r.Core.Experiments.t5_strategy = s)
          rows
      in
      check_bool
        (Printf.sprintf "priority <= first-fit at %d regs" n)
        true
        ((get Regalloc.Priority).Core.Experiments.t5_traffic
        <= (get Regalloc.First_fit).Core.Experiments.t5_traffic))
    [ 4; 8; 16; 32 ];
  (* with 256 registers (the CDC 480 end of the survey's range): no spills *)
  List.iter
    (fun r ->
      if r.Core.Experiments.t5_nregs = 256 then
        check_int "no spills at 256" 0 r.Core.Experiments.t5_spilled)
    rows

let test_t6_shape () =
  match Core.Experiments.t6_rows () with
  | [ macro; empl; compiled; hand ] ->
      check_bool "macro is slowest" true
        (macro.Core.Experiments.t6_cycles > empl.Core.Experiments.t6_cycles);
      check_bool "EMPL slower than YALLL" true
        (empl.Core.Experiments.t6_cycles > compiled.Core.Experiments.t6_cycles);
      check_bool "hand fastest" true
        (hand.Core.Experiments.t6_cycles <= compiled.Core.Experiments.t6_cycles);
      check_bool "EMPL speedup is at least the survey's 'factor of five'" true
        (empl.Core.Experiments.t6_speedup >= 5.0)
  | _ -> Alcotest.fail "expected four T6 rows"

let test_t7_shape () =
  (* vertical: fewer program bits, more cycles *)
  let rows = Core.Experiments.t7_rows () in
  let pairs =
    List.filter (fun r -> r.Core.Experiments.t7_machine = "HP3") rows
    |> List.map (fun hp ->
           ( hp,
             List.find
               (fun r ->
                 r.Core.Experiments.t7_machine = "B17"
                 && r.Core.Experiments.t7_program = hp.Core.Experiments.t7_program)
               rows ))
  in
  check_bool "has pairs" true (pairs <> []);
  List.iter
    (fun (hp, b) ->
      check_bool "vertical slower" true
        (b.Core.Experiments.t7_cycles > hp.Core.Experiments.t7_cycles);
      check_bool "vertical smaller" true
        (b.Core.Experiments.t7_program_bits < hp.Core.Experiments.t7_program_bits))
    pairs

let test_f1_shape () =
  List.iter
    (fun r ->
      check_bool "available >= achieved" true
        (r.Core.Experiments.f1_parallelism >= r.Core.Experiments.f1_ops_per_word_hp3 -. 0.01);
      check_bool "achieved >= 1" true (r.Core.Experiments.f1_ops_per_word_hp3 >= 0.99))
    (Core.Experiments.f1_rows ());
  (* larger blocks realise real packing *)
  let big = List.nth (Core.Experiments.f1_rows ()) 4 in
  check_bool "packing on 64-stmt blocks" true
    (big.Core.Experiments.f1_ops_per_word_hp3 > 1.2)

let test_f2_shape () =
  (match Core.Experiments.f2_interrupts () with
  | [ without; with_ ] ->
      check_int "no polls, nothing serviced" 0
        without.Core.Experiments.f2_serviced;
      check_int "polls service all five" 5 with_.Core.Experiments.f2_serviced;
      check_bool "poll overhead exists" true
        (with_.Core.Experiments.f2_total_cycles
        > without.Core.Experiments.f2_total_cycles)
  | _ -> Alcotest.fail "expected two F2 rows");
  match Core.Experiments.f2_traps () with
  | [ buggy; safe; compiled; trapsafe ] ->
      check_int "double increment" 301 buggy.Core.Experiments.f2_final;
      check_int "safe version" 300 safe.Core.Experiments.f2_final;
      check_int "compiled literal also buggy" 301
        compiled.Core.Experiments.f2_final;
      check_int "trap_safe pass repairs it" 300
        trapsafe.Core.Experiments.f2_final
  | _ -> Alcotest.fail "expected four trap rows"

let test_a1_shape () =
  match Core.Experiments.a1_rows () with
  | [ chain; microop; alloc ] ->
      check_bool "chaining never hurts" true
        (chain.Core.Experiments.a1_base <= chain.Core.Experiments.a1_variant);
      check_bool "MICROOP shrinks code" true
        (microop.Core.Experiments.a1_base < microop.Core.Experiments.a1_variant);
      check_bool "priority allocator not worse" true
        (alloc.Core.Experiments.a1_base <= alloc.Core.Experiments.a1_variant)
  | _ -> Alcotest.fail "expected three ablation rows"

let test_o1_shape () =
  let rows = Core.Experiments.o1_rows () in
  check_bool "several rows" true (List.length rows >= 6);
  let strict, control = ref 0, ref 0 in
  List.iter
    (fun (r : Core.Experiments.o1_row) ->
      check_bool "-O1 never larger" true
        (r.Core.Experiments.o1_words1 <= r.Core.Experiments.o1_words0);
      if r.Core.Experiments.o1_words1 < r.Core.Experiments.o1_words0 then
        incr strict;
      if r.Core.Experiments.o1_language = Core.Toolkit.Sstar then begin
        incr control;
        check_int "S* control unchanged" r.Core.Experiments.o1_words0
          r.Core.Experiments.o1_words1
      end)
    rows;
  check_bool "strict reduction on at least three rows" true (!strict >= 3);
  check_int "the S* control is present" 1 !control

let test_sweeper_machines_valid () =
  List.iter
    (fun n ->
      let d = Core.Sweeper.machine ~nregs:n in
      check_int (Printf.sprintf "SWP%d alloc regs" n) n
        (List.length (Desc.regs_of_class d "alloc")))
    [ 2; 16; 256 ]

let test_all_tables_render () =
  (* every experiment table renders without raising *)
  List.iter
    (fun t -> check_bool "renders" true (String.length (Msl_util.Tbl.render t) > 0))
    (Core.Experiments.all_tables ())

let () =
  Alcotest.run "core"
    [
      ("matrix", [ Alcotest.test_case "survey tallies" `Quick test_t1_tallies ]);
      ( "handcoded",
        [
          Alcotest.test_case "translit" `Quick test_handcoded_translit;
          Alcotest.test_case "mpy" `Quick test_handcoded_mpy;
          Alcotest.test_case "fpmul parity" `Quick test_fpmul_parity;
        ] );
      ( "emulator",
        [
          Alcotest.test_case "basics" `Quick test_emulator_basics;
          Alcotest.test_case "indirect" `Quick test_emulator_indirect;
        ] );
      ( "shapes",
        [
          Alcotest.test_case "T2 hand <= O2 <= O1, worst below +100%" `Quick
            test_t2_shape;
          Alcotest.test_case "T3 HP3 beats V11" `Quick test_t3_shape;
          Alcotest.test_case "T4 algorithm ordering" `Quick test_t4_shape;
          Alcotest.test_case "T5 spill monotonicity" `Quick test_t5_shape;
          Alcotest.test_case "T6 speedup ladder" `Quick test_t6_shape;
          Alcotest.test_case "T7 vertical trade-off" `Quick test_t7_shape;
          Alcotest.test_case "F1 parallelism gap" `Quick test_f1_shape;
          Alcotest.test_case "F2 interrupts and traps" `Quick test_f2_shape;
          Alcotest.test_case "A1 ablations" `Quick test_a1_shape;
          Alcotest.test_case "O1 optimizer wins, S* control flat" `Quick
            test_o1_shape;
        ] );
      ( "infrastructure",
        [
          Alcotest.test_case "sweeper machines" `Quick
            test_sweeper_machines_valid;
          Alcotest.test_case "all tables render" `Quick test_all_tables_render;
        ] );
    ]
