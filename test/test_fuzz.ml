(* Robustness fuzzing: every frontend (and the microassembler) must answer
   arbitrary input with a structured diagnostic — never an OCaml exception,
   never a crash.  Two generators: raw printable noise, and mutations of
   valid programs (which reach much deeper into the compilers). *)

open Msl_machine
module Core = Msl_core
module Diag = Msl_util.Diag

(* The mutators live in Workloads so the engine differential oracle
   (test_engine_diff) runs the same mutation corpus. *)
let noise = Core.Workloads.noise
let mutate = Core.Workloads.mutate

(* The compiler under test survives when it succeeds (and its thunk's
   property holds) or raises Diag.Error; anything else is a robustness
   bug. *)
let survives f =
  match f () with
  | ok -> ok
  | exception Diag.Error _ -> true
  | exception _ -> false

(* Every fuzzed program that compiles gets the full analyzer run on it:
   the linter must never crash on compiler output — the static
   race/encoding checks must never flag it, and the translation
   validator must never refute a block the compiler itself compacted.
   The MIR/dead/latency checks are exempt from the cleanliness claim: a
   mutated-but-valid source can legitimately contain uninitialized reads
   or unreachable code.  Hand-assembled programs are only held to
   crash-freedom — hand-written microcode may genuinely race, which is
   the analyzer's reason to exist. *)
let lint_config =
  { Msl_mir.Lint.latency_budget = Some 4096; pedantic = true }

let lint_compiled (c : Core.Toolkit.compiled) =
  let d = c.Core.Toolkit.c_machine in
  let labels = c.Core.Toolkit.c_labels in
  let insts = c.Core.Toolkit.c_insts in
  ignore (Msl_mir.Lint.run ~config:lint_config ~labels d insts);
  Msl_mir.Diag.errors
    (Msl_mir.Lint.check_races ~labels d insts
    @ Msl_mir.Lint.check_encoding ~labels d insts)
  = []

let seeds = [ "simpl"; "empl"; "sstar"; "yalll"; "masm" ]

let valid_program = function
  | "simpl" -> Core.Handcoded.simpl_fpmul
  | "empl" ->
      "DECLARE A FIXED;\nDECLARE OUT(1) FIXED;\nA = 6 * 7;\nOUT(0) = A;\n"
  | "sstar" ->
      "program P;\nvar x : seq [15..0] bit at R1;\n\
       begin while x <> 0 inv { true } do x := x - 1 od end\n"
  | "yalll" -> Core.Handcoded.yalll_translit
  | _ -> Core.Handcoded.translit_hp3

(* Compile with the Tv capture hook live and hold every compacted block
   to its reference schedule: a refutation on an honest compile is a
   compaction bug, so it fails the property outright. *)
let compile_validated lang d src =
  let artifacts = ref [] in
  let c =
    Core.Toolkit.compile ~capture:(fun a -> artifacts := a :: !artifacts)
      lang d src
  in
  let tv = Msl_mir.Tv.validate_artifacts d (List.rev !artifacts) in
  lint_compiled c && tv.Msl_mir.Tv.v_refuted = 0

let compile_of lang src =
  let d = Machines.hp3 in
  let via l () = compile_validated l d src in
  match lang with
  | "simpl" -> via Core.Toolkit.Simpl
  | "empl" -> via Core.Toolkit.Empl
  | "sstar" -> via Core.Toolkit.Sstar
  | "yalll" -> via Core.Toolkit.Yalll
  | _ ->
      fun () ->
        let insts = Masm.parse_program d src in
        ignore (Msl_mir.Lint.run ~config:lint_config d insts);
        true

let fuzz_lang lang =
  QCheck.Test.make ~count:600
    ~name:(Printf.sprintf "%s survives hostile input" lang)
    QCheck.(pair (int_bound 1_000_000) (int_range 0 160))
    (fun (seed, len) ->
      let rng = Random.State.make [| seed; len |] in
      let src =
        if Random.State.bool rng then noise rng len
        else mutate rng (valid_program lang)
      in
      survives (compile_of lang src))

(* The shipped example programs are a richer mutation corpus than the
   handcoded seeds: they exercise loops, shifts, subroutine-free control
   flow and the EMPL allocator.  Every [examples/*] source is mutated
   against its own frontend. *)
let example_corpus =
  let dir =
    if Sys.file_exists "../examples" then "../examples" else "examples"
  in
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.filter_map (fun f ->
         let lang =
           if Filename.check_suffix f ".yll" then Some Core.Toolkit.Yalll
           else if Filename.check_suffix f ".simpl" then
             Some Core.Toolkit.Simpl
           else if Filename.check_suffix f ".empl" then Some Core.Toolkit.Empl
           else None
         in
         match lang with
         | None -> None
         | Some lang ->
             let ic = open_in_bin (Filename.concat dir f) in
             let src = really_input_string ic (in_channel_length ic) in
             close_in ic;
             Some (f, lang, src))

let corpus_is_populated () =
  Alcotest.(check bool)
    "at least six example sources" true
    (List.length example_corpus >= 6)

let fuzz_example (name, lang, src) =
  QCheck.Test.make ~count:300
    ~name:(Printf.sprintf "examples/%s survives mutation" name)
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed; String.length src; 97 |] in
      let src = mutate rng src in
      survives (fun () -> compile_validated lang Machines.hp3 src))

(* The batch-manifest parser must answer arbitrary manifest text — and
   arbitrary [load] behaviour, including missing files — with a located
   [Diag.Error], never a crash. *)
let valid_manifest =
  "# demo manifest\n\
   yalll hp3 a.yll\n\
   simpl b17 b.simpl algo=fcfs chain=off id=b@b17\n\
   empl hp3 c.empl strategy=first-fit pool=4\n\
   yalll v11 a.yll trap_safe=on poll=off microops=on\n"

let fuzz_manifest =
  QCheck.Test.make ~count:800 ~name:"manifest parser survives hostile input"
    QCheck.(pair (int_bound 1_000_000) (int_range 0 200))
    (fun (seed, len) ->
      let rng = Random.State.make [| seed; len; 77 |] in
      let text =
        if Random.State.bool rng then noise rng len
        else mutate rng valid_manifest
      in
      let load path =
        match Random.State.int rng 3 with
        | 0 -> raise (Sys_error (path ^ ": no such file or directory"))
        | 1 -> noise rng 32
        | _ -> "exit\n"
      in
      survives (fun () ->
          ignore (Core.Service.parse_manifest ~file:"fuzz.manifest" ~load text);
          true))

(* The .mdesc elaborator is an input surface like any frontend: mutated
   machine descriptions (seeded from the canonical rendering of each
   shipped machine, or raw noise) must come back as located diagnostics
   — or as a valid Desc.t, never as a raw exception.  Generated machines
   (Workloads.gen_machine) are also mutated, so the fuzz corpus is not
   limited to the four shipped layouts. *)
let mdesc_sources =
  List.map Mdesc.to_source Machines.all

let fuzz_mdesc =
  QCheck.Test.make ~count:600 ~name:"mdesc elaborator survives hostile input"
    QCheck.(pair (int_bound 1_000_000) (int_range 0 200))
    (fun (seed, len) ->
      let rng = Random.State.make [| seed; len; 41 |] in
      let src =
        match Random.State.int rng 6 with
        | 0 -> noise rng len
        | 1 -> mutate rng (Core.Workloads.gen_machine ~seed)
        | _ ->
            mutate rng
              (List.nth mdesc_sources
                 (Random.State.int rng (List.length mdesc_sources)))
      in
      survives (fun () ->
          ignore (Mdesc.parse ~file:"fuzz.mdesc" src);
          true))

(* Every generated machine must elaborate cleanly: gen_machine feeds the
   M1 machine-space sweep, so an invalid description here would poison
   the experiment rather than test the toolchain. *)
let gen_machine_is_valid =
  QCheck.Test.make ~count:200 ~name:"gen_machine always elaborates"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let src = Core.Workloads.gen_machine ~seed in
      let d = Mdesc.parse ~file:"gen.mdesc" src in
      Array.length d.Desc.d_templates > 0)

let () =
  Alcotest.run "fuzz"
    [
      ( "frontends",
        List.map (fun l -> QCheck_alcotest.to_alcotest (fuzz_lang l)) seeds );
      ( "examples",
        Alcotest.test_case "corpus populated" `Quick corpus_is_populated
        :: List.map
             (fun e -> QCheck_alcotest.to_alcotest (fuzz_example e))
             example_corpus );
      ("manifest", [ QCheck_alcotest.to_alcotest fuzz_manifest ]);
      ( "machine descriptions",
        [
          QCheck_alcotest.to_alcotest fuzz_mdesc;
          QCheck_alcotest.to_alcotest gen_machine_is_valid;
        ] );
    ]
