The static analyzer.  Exit-code discipline: 0 when the program is
clean, 1 when it was analyzed and findings were reported, 2 when the
input could not be processed at all.

A clean program: one summary line, exit 0.

  $ (cd ../.. && bin/mslc.exe lint -l yalll -m hp3 examples/sum_loop.yll)
  examples/sum_loop.yll: 5 words on HP3: no findings

The machine-readable reports carry the machine name and the tallies.

  $ (cd ../.. && bin/mslc.exe lint -l yalll -m hp3 --format json examples/sum_loop.yll)
  {"machine":"HP3","errors":0,"warnings":0,"findings":[]}

  $ (cd ../.. && bin/mslc.exe lint -l yalll -m b17 --format sexp examples/shifts.yll)
  (lint (machine B17) (errors 0) (warnings 0) (findings))

The latency analysis is opt-in: under a 3-cycle budget the unpolled
sum loop is flagged, with provenance back to the owning block, and the
check failure is exit 1.

  $ (cd ../.. && bin/mslc.exe lint -l yalll -m hp3 --latency-budget 3 examples/sum_loop.yll)
  error[poll-unbounded] word 2 (block loop): a loop contains no interrupt poll: poll latency is unbounded
  examples/sum_loop.yll: 1 error, 0 warnings
  [1]

  $ (cd ../.. && bin/mslc.exe lint -l yalll -m hp3 --latency-budget 3 --format json examples/sum_loop.yll)
  {"machine":"HP3","errors":1,"warnings":0,"findings":[{"code":"poll-unbounded","severity":"error","loc":{"kind":"word","addr":2,"owner":"loop"},"message":"a loop contains no interrupt poll: poll latency is unbounded"}]}
  [1]

Compiling with poll points inserted satisfies a realistic budget.

  $ (cd ../.. && bin/mslc.exe lint -l yalll -m hp3 --poll --latency-budget 64 examples/sum_loop.yll)
  examples/sum_loop.yll: 8 words on HP3: no findings

A source that does not parse is exit 2, through the same structured
diagnostic printer.

  $ echo "&&& not yalll" > broken.yll
  $ ../../bin/mslc.exe lint -l yalll -m hp3 broken.yll
  error[parse] <yalll>:1.1-1: unexpected character '&'
  [2]

The batch service gates jobs on the same analyzer: --lint turns the
gate on for every job, and a manifest line can opt in with lint=on.

  $ echo "yalll hp3 ../../examples/sum_loop.yll lint=on" > lint.manifest
  $ ../../bin/mslc.exe batch lint.manifest
  ok    ../../examples/sum_loop.yll@hp3    5 words,    5 ops
  -- 1 jobs: 0 hits, 1 misses, 0 evictions, 0 errors; 1 entries cached

  $ echo "yalll hp3 ../../examples/gcd.yll" > lint2.manifest
  $ ../../bin/mslc.exe batch lint2.manifest --lint
  ok    ../../examples/gcd.yll@hp3     10 words,    7 ops
  -- 1 jobs: 0 hits, 1 misses, 0 evictions, 0 errors; 1 entries cached
