Batch compilation through the service: one cold round over the example
manifest.  The three duplicate jobs at the end hit the content-addressed
cache even on a cold first round.

  $ (cd ../.. && bin/mslc.exe batch examples/batch.manifest --domains 1)
  ok    examples/sum_loop.yll@hp3       5 words,    5 ops
  ok    examples/sum_loop.yll@v11       8 words,    9 ops
  ok    examples/sum_loop.yll@b17       6 words,    5 ops
  ok    examples/gcd.yll@hp3           10 words,    7 ops
  ok    examples/gcd.yll@v11           15 words,   14 ops
  ok    examples/gcd.yll@b17           14 words,   12 ops
  ok    examples/shifts.yll@hp3         4 words,    4 ops
  ok    examples/shifts.yll@v11         4 words,    4 ops
  ok    examples/shifts.yll@b17         4 words,    4 ops
  ok    sum_loop.yll@hp3+seq            6 words,    5 ops
  ok    sum_loop.yll@hp3+fcfs           5 words,    5 ops
  ok    sum_loop.yll@hp3+opt            5 words,    5 ops
  ok    gcd.yll@hp3+seq                10 words,    7 ops
  ok    gcd.yll@hp3+fcfs               10 words,    7 ops
  ok    gcd.yll@hp3+opt                10 words,    7 ops
  ok    shifts.yll@hp3+seq              4 words,    4 ops
  ok    shifts.yll@hp3+fcfs             4 words,    4 ops
  ok    shifts.yll@hp3+opt              4 words,    4 ops
  ok    examples/sum_while.simpl@hp3    7 words,    5 ops
  ok    examples/sum_while.simpl@h1     7 words,    5 ops
  ok    examples/sum_while.simpl@b17    8 words,    5 ops
  ok    examples/mpy.simpl@hp3          8 words,    6 ops
  ok    examples/mpy.simpl@h1           8 words,    6 ops
  ok    examples/mpy.simpl@b17          9 words,    6 ops
  ok    sum_while.simpl@h1-chain        7 words,    5 ops
  ok    mpy.simpl@h1-chain              8 words,    6 ops
  ok    sum_while.simpl@hp3+poll       10 words,    6 ops
  ok    mpy.simpl@hp3+trapsafe          8 words,    6 ops
  ok    examples/fold.empl@hp3          2 words,    3 ops
  ok    examples/fold.empl@b17          3 words,    3 ops
  ok    fold.empl@hp3+ff                2 words,    3 ops
  ok    fold.empl@hp3+pool4             2 words,    3 ops
  ok    fold.empl@b17+ff                3 words,    3 ops
  ok    mpy.simpl@h1+so                 7 words,    6 ops
  ok    mpy.simpl@hp3+so                7 words,    6 ops
  ok    gcd.yll@b17+O2                 13 words,   12 ops
  ok    sum_loop.yll@hp3+dup            5 words,    5 ops  (cached)
  ok    sum_while.simpl@hp3+dup         7 words,    5 ops  (cached)
  ok    fold.empl@hp3+dup               2 words,    3 ops  (cached)
  -- 39 jobs: 3 hits, 36 misses, 0 evictions, 0 errors; 36 entries cached

A second round over the same service is served entirely warm: every
probe after round one is a hit.

  $ (cd ../.. && bin/mslc.exe batch examples/batch.manifest --domains 1 --rounds 2) | tail -n 5
  ok    gcd.yll@b17+O2                 13 words,   12 ops  (cached)
  ok    sum_loop.yll@hp3+dup            5 words,    5 ops  (cached)
  ok    sum_while.simpl@hp3+dup         7 words,    5 ops  (cached)
  ok    fold.empl@hp3+dup               2 words,    3 ops  (cached)
  -- 78 jobs: 42 hits, 36 misses, 0 evictions, 0 errors; 36 entries cached

A manifest referencing an unknown machine is a located parse error —
the input could not be processed at all, which is exit 2.

  $ echo "yalll pdp11 ../../examples/sum_loop.yll" > bad.manifest
  $ ../../bin/mslc.exe batch bad.manifest
  error[parse] bad.manifest:1.1-1: unknown machine "pdp11"
  [2]

A failing job is reported per job and fails the batch: the manifest
itself was processed, so this is exit 1.

  $ echo "&&& not yalll" > broken.yll
  $ echo "yalll hp3 broken.yll" > broken.manifest
  $ ../../bin/mslc.exe batch broken.manifest
  error broken.yll@hp3               [parse] <yalll>:1.1-1: unexpected character '&'
  -- 1 jobs: 0 hits, 1 misses, 0 evictions, 1 errors; 0 entries cached
  [1]

The persistent disk cache: a cold run populates --cache-dir, and a
fresh process over the same manifest is served back from it.  39 jobs
over 36 distinct keys — the three manifest duplicates hit in memory, so
the restarted run reports 36 of its 39 hits from disk.

  $ mkdir disk
  $ (cd ../.. && bin/mslc.exe batch examples/batch.manifest --domains 1 --cache-dir "$OLDPWD/disk") | tail -n 2
  -- 39 jobs: 3 hits, 36 misses, 0 evictions, 0 errors; 36 entries cached
  -- disk cache: 0 hits, 36 stores

  $ (cd ../.. && bin/mslc.exe batch examples/batch.manifest --domains 1 --cache-dir "$OLDPWD/disk") | tail -n 2
  -- 39 jobs: 39 hits, 0 misses, 0 evictions, 0 errors; 36 entries cached
  -- disk cache: 36 hits, 0 stores

Deterministic fault injection: with every attempt raising and no
retries, each job fails alone behind its per-job firewall — the batch
still completes every job and exits 1, it never aborts.

  $ cat > faults.manifest <<'EOF'
  > yalll hp3 ../../examples/gcd.yll
  > yalll b17 ../../examples/gcd.yll
  > yalll hp3 ../../examples/sum_loop.yll
  > EOF
  $ ../../bin/mslc.exe batch faults.manifest -j 1 --inject-raise 1.0
  error ../../examples/gcd.yll@hp3   [internal] injected fault (attempt 1)
  error ../../examples/gcd.yll@b17   [internal] injected fault (attempt 1)
  error ../../examples/sum_loop.yll@hp3 [internal] injected fault (attempt 1)
  -- 3 jobs: 0 hits, 3 misses, 0 evictions, 3 errors; 0 entries cached
  -- faults: 3 internal errors, 0 retries, 0 deadline failures, 0 canceled
  [1]

The same injection rate with retries recovers every job (the draws are
deterministic in the seed, so the retry tally is pinned too).

  $ ../../bin/mslc.exe batch faults.manifest -j 1 --inject-raise 0.5 --retries 8 --backoff-ms 0.1 | tail -n 2
  -- 3 jobs: 0 hits, 3 misses, 0 evictions, 0 errors; 3 entries cached
  -- faults: 2 internal errors, 2 retries, 0 deadline failures, 0 canceled

Fail-fast: --keep-going=false cancels jobs not yet started once the
first failure lands (with -j 1 the pickup order is the manifest order).

  $ cat > ff.manifest <<'EOF'
  > yalll hp3 broken.yll
  > yalll hp3 ../../examples/gcd.yll
  > EOF
  $ ../../bin/mslc.exe batch ff.manifest -j 1 --keep-going=false
  error broken.yll@hp3               [parse] <yalll>:1.1-1: unexpected character '&'
  error ../../examples/gcd.yll@hp3   [internal] canceled: an earlier job failed and the batch is fail-fast
  -- 1 jobs: 0 hits, 1 misses, 0 evictions, 2 errors; 0 entries cached
  -- faults: 0 internal errors, 0 retries, 0 deadline failures, 1 canceled
  [1]

A consumer that closes the pipe early must not kill the batch: EPIPE
ends the output quietly with exit 0 — never a crash, never exit 125.

  $ ( (cd ../.. && bin/mslc.exe batch examples/batch.manifest --domains 1 --rounds 64); echo "$?" > status ) | head -n 1
  == round 1
  $ cat status
  0
