The translation validator.  Exit-code discipline mirrors the linter:
0 when every compacted block is proved equivalent to its reference
schedule, 1 when a block is refuted, 2 when the request itself could
not be processed.

An honest compile validates: every block proved, exit 0.

  $ (cd ../.. && bin/mslc.exe compile -l yalll -m hp3 --validate examples/gcd.yll >/dev/null)

The summary line carries the per-verdict tallies.

  $ (cd ../.. && bin/mslc.exe compile -l yalll -m hp3 --validate examples/gcd.yll) | tail -n 1
  ; validate: 6 blocks: 6 validated (0 dynamic), 0 refuted, 0 unknown

A seeded miscompile (here: swapping two dependent words) is refuted,
with a located finding, a concrete counterexample store, and exit 1.

  $ (cd ../.. && bin/mslc.exe compile -l yalll -m hp3 --validate --tv-inject swap-dep:0 examples/gcd.yll) | sed -n '/tv-refuted/,$p'
  error[tv-refuted] word 0 (block start): words 0..1 is not equivalent to its reference schedule; counterexample r:R2=16'd0
  r:R3=16'd0
  error[tv-refuted] word 2 (block loop): words 2..2 is not equivalent to its reference schedule; counterexample r:R1=16'd0 r:R2=16'd0
  r:R3=16'd0
  ; validate: 6 blocks: 4 validated (0 dynamic), 2 refuted, 0 unknown

The check failure is exit 1 (the pipe above hides it).

  $ (cd ../.. && bin/mslc.exe compile -l yalll -m hp3 --validate --tv-inject swap-dep:0 examples/gcd.yll >/dev/null)
  [1]

A malformed injection spec is a usage error: exit 2.

  $ (cd ../.. && bin/mslc.exe compile -l yalll -m hp3 --validate --tv-inject bogus examples/gcd.yll >/dev/null)
  error[parse]: expected KIND:SEED, got "bogus" (kinds: swap-dep, drop-word, retarget, perturb-operand)
  [2]
