Machines are .mdesc data.  An unknown registry name is a located
semantic diagnostic under the standard exit-code discipline (exit 2),
naming the machines that do exist.

  $ ../../bin/mslc.exe run -l yalll -m z99 ../../examples/gcd.yll
  error[semantic]: unknown machine "z99" (known: H1, HP3, V11, B17)
  [2]

--machine-file elaborates a user description instead of a registry
entry.  The shipped B17 source is itself such a file:

  $ ../../bin/mslc.exe run -l yalll --machine-file ../../machines/b17.mdesc ../../examples/gcd.yll
  halted after 49 cycles (49 microinstructions executed)
    R0     = 16'd21
    R1     = 16'd21
    R2     = 16'd21
    R26    = 16'd32768
    R27    = 16'd32768

A malformed description is answered with a located diagnostic carrying
the file position, never a crash:

  $ printf 'machine Bad {\n  word 96\n}\n' > bad.mdesc
  $ ../../bin/mslc.exe run -l yalll --machine-file bad.mdesc ../../examples/gcd.yll
  error[semantic] bad.mdesc:2.8-10: word 96 outside 1..64
  [2]

  $ ../../bin/mslc.exe compile -l yalll --machine-file /nonexistent.mdesc ../../examples/gcd.yll
  error[semantic]: cannot read machine description: /nonexistent.mdesc: No such file or directory
  [2]
