The persistent compile server: one daemon, several client connections
over a Unix-domain socket, one shared cache.  The socket lives under
/tmp because the cram sandbox path can exceed the sun_path limit.

  $ SOCK=$(mktemp -u /tmp/mslc-serve-XXXXXX)
  $ ../../bin/mslc.exe serve --socket "$SOCK" -j 1 2> serve.log &
  $ SRV=$!

The client retries while the daemon is still binding, so no sleep is
needed.  A cold compile:

  $ ../../bin/mslc.exe connect compile ../../examples/gcd.yll -l yalll -m hp3 --socket "$SOCK"
  ok    gcd.yll@hp3                    10 words,    7 ops

A second connection is served from the cache the first one filled:

  $ ../../bin/mslc.exe connect compile ../../examples/gcd.yll -l yalll -m hp3 --socket "$SOCK"
  ok    gcd.yll@hp3                    10 words,    7 ops  (cached)

Pipelining: --repeat streams every request before reading any response
(one worker domain keeps the cached flags deterministic):

  $ ../../bin/mslc.exe connect compile ../../examples/gcd.yll -l yalll -m v11 --repeat 3 --socket "$SOCK"
  ok    gcd.yll@v11#1                  15 words,   14 ops
  ok    gcd.yll@v11#2                  15 words,   14 ops  (cached)
  ok    gcd.yll@v11#3                  15 words,   14 ops  (cached)

The run and lint ops ride the same cached compile path:

  $ ../../bin/mslc.exe connect run ../../examples/sum_loop.yll -l yalll -m hp3 --socket "$SOCK"
  ok    sum_loop.yll@hp3                5 words,    5 ops, halted
  $ ../../bin/mslc.exe connect lint ../../examples/shifts.yll -l yalll -m b17 --socket "$SOCK"
  ok    shifts.yll@b17                  4 words,    4 ops

Server counters (the queue high-water mark depends on worker timing,
so it is masked):

  $ ../../bin/mslc.exe connect stats --socket "$SOCK" | sed 's/queue peak [0-9]*/queue peak _/'
  -- serve: 8 requests, 7 responses, 0 errors; queue peak _; 1 clients
  -- cache: 7 jobs, 3 hits, 4 misses; 4 entries

A failing job is answered on the same connection — the daemon keeps
serving — and the client exits 1:

  $ printf 'bogus(\n' > bad.yll
  $ ../../bin/mslc.exe connect compile bad.yll -l yalll -m hp3 --socket "$SOCK"
  error bad.yll@hp3                  parse error: unknown mnemonic "bogus"
  [1]

shutdown is acknowledged, then the daemon exits 0 and removes its
socket:

  $ ../../bin/mslc.exe connect shutdown --socket "$SOCK"
  -- shutdown requested
  $ wait $SRV
  $ test -S "$SOCK"; echo "socket exists: $?"
  socket exists: 1
  $ sed "s|$SOCK|SOCK|" serve.log
  mslc serve: listening on SOCK (1 domains)
