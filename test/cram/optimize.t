The machine-independent optimizer is on by default (-O 1).  At -O 0 the
constant cascade compiles statement by statement, the way the survey's
compilers did.

  $ ../../bin/mslc.exe compile -l simpl -m hp3 -O 0 ../../examples/cascade.simpl
     0: [ldc R1, #6]
     1: [ldc R27, #7]
     2: [add R1, R1, R27 | ldc R27, #9]
     3: [shlf R1, R1, #2]
     4: [or R1, R1, R27 | ldc R27, #1023]
     5: [and R2, R1, R27 | ldc R27, #5]
     6: [sub R2, R2, R27 | wrr R1, R2] -> halt
  ; 7 words, 11 microoperations, 1190 control-store bits

At -O 1 the chain folds; only the flag-setting shift (its UF bit is
testable) and the final stores survive.

  $ ../../bin/mslc.exe compile -l simpl -m hp3 ../../examples/cascade.simpl
     0: [ldc R1, #13]
     1: [shlf R1, R1, #2 | ldc R27, #5]
     2: [ldc R1, #61]
     3: [ldc R2, #56 | wrr R1, R2] -> halt
  ; 4 words, 6 microoperations, 680 control-store bits

Both versions leave the same machine state behind.

  $ ../../bin/mslc.exe run -l simpl -m hp3 -O 0 ../../examples/cascade.simpl | grep 'R[12] '
    R1     = 16'd61
    R2     = 16'd56

  $ ../../bin/mslc.exe run -l simpl -m hp3 ../../examples/cascade.simpl | grep 'R[12] '
    R1     = 16'd61
    R2     = 16'd56

--time-passes reports the wall clock of every executed pass (times
normalised here; disabled passes do not appear).

  $ ../../bin/mslc.exe compile -l empl -m hp3 --time-passes ../../examples/fold.empl \
  >   | sed -n '/pass timings/,$p' | sed 's/ *[0-9.]* ms/ - ms/'
  ; pass timings
  validate - ms
  const-fold - ms
  copy-prop - ms
  branch-simplify - ms
  jump-thread - ms
  dce - ms
  lower - ms
  regalloc - ms
  select+compact - ms
  link - ms

--dump-after shows the MIR snapshot a pass leaves behind: after dce the
fully constant EMPL program is two values and a store.

  $ ../../bin/mslc.exe compile -l empl -m hp3 --dump-after dce ../../examples/fold.empl
  ; MIR after dce
  main:
    %OUT_val := 16'd126
    %addr2 := 16'd1536
    mem[%addr2] := %OUT_val
    halt
     0: [ldc R0, #126]
     1: [ldc R1, #1536 | wrr R1, R0] -> halt
  ; 2 words, 3 microoperations, 340 control-store bits


An unknown pass name is a usage error listing the valid ones.

  $ ../../bin/mslc.exe compile -l empl -m hp3 --dump-after fuse ../../examples/fold.empl
  mslc: option '--dump-after': unknown pass "fuse" (expected one of: validate,
        const-fold, copy-prop, branch-simplify, jump-thread, dce, lower,
        trapsafe, pollpoints, regalloc)
  Usage: mslc compile [OPTION]… FILE
  Try 'mslc compile --help' or 'mslc --help' for more information.
  [124]
