The compile subcommand prints the microcode listing and the size line.

  $ ../../bin/mslc.exe compile -l yalll -m hp3 ../../examples/sum_loop.yll
     0: [ldc R2, #0]
     1: [ldc R1, #10]
     2: [add R2, R2, R1 | dec R1, R1] -> if R1 <> 0 goto 2
     3: []
     4: [mov R0, R2] -> halt
  ; 5 words, 5 microoperations, 850 control-store bits

Compaction is visible in the listing: the add and the dec share a word.

  $ ../../bin/mslc.exe compile -l simpl -m b17 ../../examples/mpy.simpl
     0: [ldc R1, #11]
     1: [ldc R2, #9]
     2: [ldc R3, #0]
     3: [] -> if R1 <> 0 goto 5
     4: [] -> goto 8
     5: [add R3, R3, R2]
     6: [ldc R27, #1]
     7: [sub R1, R1, R27] -> goto 3
     8: [] -> halt
  ; 9 words, 6 microoperations, 531 control-store bits

An unknown language is a usage error, not a crash.

  $ ../../bin/mslc.exe compile -l cobol -m hp3 ../../examples/sum_loop.yll
  mslc: option '-l': invalid value 'cobol', expected one of 'simpl', 'empl',
        'sstar' or 'yalll'
  Usage: mslc compile [OPTION]… FILE
  Try 'mslc compile --help' or 'mslc --help' for more information.
  [124]
