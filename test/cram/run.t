Compile-and-execute: the gcd program leaves 21 in R0/R1.

  $ ../../bin/mslc.exe run -l yalll -m hp3 ../../examples/gcd.yll
  halted after 29 cycles (29 microinstructions executed)
    R0     = 16'd21
    R1     = 16'd21
    R2     = 16'd21

The same source retargeted to the vertical B17 gives the same answer in
more cycles.

  $ ../../bin/mslc.exe run -l yalll -m b17 ../../examples/gcd.yll
  halted after 49 cycles (49 microinstructions executed)
    R0     = 16'd21
    R1     = 16'd21
    R2     = 16'd21
    R26    = 16'd32768
    R27    = 16'd32768

SIMPL through the full pipeline, summing 25..1.

  $ ../../bin/mslc.exe run -l simpl -m hp3 ../../examples/sum_while.simpl
  halted after 80 cycles (80 microinstructions executed)
    R2     = 16'd325
    R27    = 16'd1
