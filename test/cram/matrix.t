The survey's language matrix (T1) is stable output.

  $ ../../bin/mslc.exe matrix
  == T1: the survey's language matrix (10 languages x design issues) ==
  language     year  variables        parallelism  verif  impl              datatypes                                    reimplemented
  -----------  ----  ---------------  -----------  -----  ----------------  -------------------------------------------  -------------
  SIMPL        1974  registers        sequential   no     yes (1 machine)   integer only                                 yes          
  EMPL         1976  symbolic         sequential   no     partial           integer + class-like extension types         yes          
  S*           1978  registers        explicit     yes    no                bit, seq, array, tuple, stack; syn renaming  yes          
  YALLL        1979  partly symbolic  sequential   no     yes (2 machines)  none (5 constant notations)                  yes          
  MPL          1971  registers        sequential   no     partial           1-D arrays, concatenated virtual registers   -            
  Strum        1976  registers        sequential   yes    yes (1 machine)   machine level                                -            
  MPGL         1977  registers        sequential   no     yes (1 machine)   machine level                                -            
  Malik-Lewis  1978  registers        sequential   no     no                emulated-machine objects                     -            
  CHAMIL       1980  registers        explicit     no     yes (1 machine)   PASCAL-like structuring                      -            
  PL/MP        1978  symbolic         sequential   no     partial           PL/I subset                                  -            
  
  == T1b: the survey's section-3 tallies, recomputed ==
  claim                     count  survey text                                                   
  ------------------------  -----  --------------------------------------------------------------
  sequential specification      8  "eight allow complete sequential specification"               
  explicit composition          2  "only two (S* and CHAMIL)"                                    
  symbolic variables            3  "only two or three (EMPL, PL/MP and in a certain sense YALLL)"
  parameter passing             0  "No language supports the passing of parameters"              
  interrupt/trap handling       0  "has even been completely neglected"                          
  
