The machine-model inventory is stable output.

  $ ../../bin/mslc.exe machines
  H1   64-bit, 19 registers, 3-phase, 167-bit control word
       Generic 3-phase horizontal machine standing in for the Tucker-Flynn dynamic microprocessor (SIMPL's target).
  HP3  16-bit, 32 registers, 2-phase, 170-bit control word
       Clean horizontal machine standing in for the HP300 of the YALLL experiments.
  V11  16-bit, 16 registers, 1-phase,  61-bit control word
       Baroque horizontal machine standing in for the DEC VAX-11 micro architecture of the YALLL experiments.
  B17  16-bit, 32 registers, 1-phase,  59-bit control word (vertical)
       Vertical machine standing in for the Burroughs B1700/1800 series.
