The two simulation engines are user-visible twins: mslc run defaults to
the compiled closure engine, --engine=interp selects the cycle-accurate
interpreter, and the printed architectural state is identical.

  $ ../../bin/mslc.exe run -l yalll -m hp3 ../../examples/gcd.yll
  halted after 29 cycles (29 microinstructions executed)
    R0     = 16'd21
    R1     = 16'd21
    R2     = 16'd21
  $ ../../bin/mslc.exe run -l yalll -m hp3 ../../examples/gcd.yll --engine=interp
  halted after 29 cycles (29 microinstructions executed)
    R0     = 16'd21
    R1     = 16'd21
    R2     = 16'd21
  $ ../../bin/mslc.exe run -l yalll -m hp3 ../../examples/gcd.yll --engine=compiled
  halted after 29 cycles (29 microinstructions executed)
    R0     = 16'd21
    R1     = 16'd21
    R2     = 16'd21

Same parity on a vertical machine and another frontend.

  $ ../../bin/mslc.exe run -l simpl -m b17 ../../examples/sum_while.simpl > compiled.out
  $ ../../bin/mslc.exe run -l simpl -m b17 ../../examples/sum_while.simpl --engine=interp > interp.out
  $ diff compiled.out interp.out && echo ENGINES-AGREE
  ENGINES-AGREE

The exit-code discipline survives the engine swap: out of fuel under the
compiled engine is still a failed check (exit 1) with the same stopped
state the interpreter reports — fuel counts microinstructions in both.

  $ cat > loop.yll <<'EOF'
  > reg a = r1
  > set a, 1
  > loop:
  >   jump loop
  > EOF
  $ ../../bin/mslc.exe run -l yalll -m hp3 loop.yll --fuel 500
  mslc: program did not halt within 500 steps (pc=1, 500 cycles, 500 microinstructions executed)
  [1]
  $ ../../bin/mslc.exe run -l yalll -m hp3 loop.yll --fuel 500 --engine=interp
  mslc: program did not halt within 500 steps (pc=1, 500 cycles, 500 microinstructions executed)
  [1]

A traced compiled run records the engine's own spans — one "translate"
(paid once per program) and one "execute" — alongside the usual pipeline
spans, and the independent checker accepts the file.

  $ ../../bin/mslc.exe run -l yalll -m hp3 ../../examples/gcd.yll --trace engine.jsonl > /dev/null
  $ ../check_trace.exe engine.jsonl && echo TRACE-OK
  TRACE-OK
  $ ../../bin/mslc.exe stats engine.jsonl | grep -o 'simc/[a-z]*'
  simc/execute
  simc/translate

The corpus-wide gate: batch --diff runs every job on both engines and
fails any divergence, so a green run is the oracle's claim over the
manifest.

  $ cat > diff.manifest <<'EOF'
  > yalll hp3 ../../examples/gcd.yll
  > yalll b17 ../../examples/gcd.yll
  > simpl hp3 ../../examples/sum_while.simpl
  > empl hp3 ../../examples/fold.empl
  > EOF
  $ ../../bin/mslc.exe batch diff.manifest -j 1 --diff
  ok    ../../examples/gcd.yll@hp3     10 words,    7 ops
  ok    ../../examples/gcd.yll@b17     14 words,   12 ops
  ok    ../../examples/sum_while.simpl@hp3    7 words,    5 ops
  ok    ../../examples/fold.empl@hp3    2 words,    3 ops
  -- 4 jobs: 0 hits, 4 misses, 0 evictions, 0 errors; 4 entries cached
