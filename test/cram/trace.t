Exit-code discipline around the simulator: a program that compiles but
never halts is a failed check — exit 1, with the stopped machine state
reported — not an unprocessable input.

  $ cat > loop.yll <<'EOF'
  > reg a = r1
  > set a, 1
  > loop:
  >   jump loop
  > EOF
  $ ../../bin/mslc.exe run -l yalll -m hp3 loop.yll --fuel 1000
  mslc: program did not halt within 1000 steps (pc=1, 1000 cycles, 1000 microinstructions executed)
  [1]

Unprocessable input stays exit 2.

  $ printf 'bogus!\n' > bad.yll
  $ ../../bin/mslc.exe run -l yalll -m hp3 bad.yll
  error[parse] <yalll>:1.6-6: unknown mnemonic "bogus"
  [2]

A branch-and-bound compaction that exhausts its node budget warns (the
schedule is still correct) and succeeds.

  $ ../../bin/mslc.exe compile -l yalll -m hp3 ../../examples/gcd.yll --algo optimal --bb-budget 1 > /dev/null
  mslc: warning: 1 block hit the branch-and-bound node budget; the schedule may be wider than optimal (raise --bb-budget)

A traced run emits Chrome-trace JSONL the independent checker accepts.
(-j 1 keeps the per-job cached flags deterministic.)

  $ ../../bin/mslc.exe run -l yalll -m hp3 ../../examples/gcd.yll --trace run.jsonl > /dev/null
  $ ../check_trace.exe run.jsonl && echo TRACE-OK
  TRACE-OK

  $ cat > trace.manifest <<'EOF'
  > yalll hp3 ../../examples/gcd.yll
  > yalll b17 ../../examples/gcd.yll
  > yalll hp3 ../../examples/sum_loop.yll
  > yalll hp3 ../../examples/gcd.yll id=dup
  > EOF
  $ ../../bin/mslc.exe batch trace.manifest -j 1 --rounds 2 --trace batch.jsonl > /dev/null
  $ ../check_trace.exe batch.jsonl && echo TRACE-OK
  TRACE-OK

mslc stats summarizes the trace; with -j 1 and two rounds the cache
counters are deterministic (4 jobs with one duplicate, so round one is
3 misses and 1 hit, round two all hits).

  $ ../../bin/mslc.exe stats batch.jsonl | grep 'service/cache_'
    service/cache_hits               5
    service/cache_misses             3

An empty trace is a failed check on the trace file: a structured
diagnostic and exit 1, not a zero-event report and not an exception.

  $ touch empty.jsonl
  $ ../../bin/mslc.exe stats empty.jsonl
  error[parse]: empty.jsonl: empty trace (no events)
  [1]

A mid-write-truncated trace (the writer died inside a line) gets the
same discipline, naming the offending line — the hand-rolled JSON
parser must degrade to a diagnostic, never raise.

  $ printf '{"seq":1,"ts":0.5,"ph":"C","pid":1,"tid":0,"cat":"a","name":"b","args":{"value":1}}\n{"seq":2,"ts":' > truncated.jsonl
  $ ../../bin/mslc.exe stats truncated.jsonl
  error[parse]: truncated.jsonl:2: unexpected end of input at offset 14
  [1]
