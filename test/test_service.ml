(* The batch-compilation service: determinism across domain counts and
   cache temperature, cache bookkeeping, eviction, manifest parsing, and
   a concurrent hammer on overlapping keys.

   The service's contract is that it never changes a result — only when
   it is recomputed.  So every test here compares against the same jobs
   run through Toolkit.compile sequentially, byte for byte. *)

open Msl_machine
module Core = Msl_core
module Service = Msl_core.Service
module Toolkit = Msl_core.Toolkit
module Pipeline = Msl_mir.Pipeline
module Compaction = Msl_mir.Compaction
module Diag = Msl_util.Diag

(* A mixed job list: YALLL corpus programs on three machines, EMPL
   pressure programs through the allocator, SIMPL with option variants. *)
let jobs () =
  let yalll =
    List.concat_map
      (fun machine ->
        List.init 4 (fun i ->
            Service.job
              ~id:(Printf.sprintf "y%d@%s" i machine)
              Toolkit.Yalll ~machine
              ~source:(Core.Workloads.yalll_program ~seed:(i + 1) ~len:16)))
      [ "hp3"; "v11"; "b17" ]
  in
  let empl =
    List.init 4 (fun i ->
        Service.job
          ~id:(Printf.sprintf "e%d" i)
          Toolkit.Empl ~machine:"hp3"
          ~source:
            (Core.Workloads.pressure_program ~seed:(i + 1) ~nvars:8 ~nops:12))
  in
  let simpl =
    List.map
      (fun (id, options) ->
        Service.job ~id ~options Toolkit.Simpl ~machine:"hp3"
          ~source:"begin 25 -> R1; 0 -> R2; while R1 <> 0 do begin R2 + R1 \
                   -> R2; R1 - 1 -> R1; end; end")
      [
        ("s-default", Pipeline.default_options);
        ("s-seq", { Pipeline.default_options with algo = Compaction.Sequential });
        ("s-fcfs", { Pipeline.default_options with algo = Compaction.Fcfs });
      ]
  in
  yalll @ empl @ simpl

(* The sequential ground truth: Toolkit.compile, no service involved. *)
let reference_listings js =
  List.map
    (fun (j : Service.job) ->
      let d = Machines.get j.Service.j_machine in
      let c =
        Toolkit.compile ~options:j.Service.j_options
          ~use_microops:j.Service.j_use_microops j.Service.j_language d
          j.Service.j_source
      in
      (Masm.print d c.Toolkit.c_insts, (c.Toolkit.c_words, c.Toolkit.c_ops, c.Toolkit.c_bits)))
    js

let outcome_listings outcomes =
  Array.to_list outcomes
  |> List.map (fun (o : Service.outcome) ->
         match o.Service.o_result with
         | Ok (c, listing) ->
             (listing, (c.Toolkit.c_words, c.Toolkit.c_ops, c.Toolkit.c_bits))
         | Error d -> Alcotest.failf "job %s failed: %s" o.Service.o_job.Service.j_id (Diag.to_string d))

let check_identical what expected got =
  Alcotest.(check (list (pair string (triple int int int)))) what expected got

let test_batch_matches_sequential () =
  let js = jobs () in
  let expected = reference_listings js in
  let s = Service.create ~domains:1 () in
  check_identical "1 domain, cold cache" expected
    (outcome_listings (Service.run_batch s js))

let test_domain_count_invariance () =
  let js = jobs () in
  let expected = reference_listings js in
  let one = Service.create ~domains:1 () in
  let four = Service.create ~domains:4 () in
  let got1 = outcome_listings (Service.run_batch one js) in
  let got4 = outcome_listings (Service.run_batch four js) in
  check_identical "1 domain" expected got1;
  check_identical "4 domains" expected got4

let test_warm_cache_invariance () =
  let js = jobs () in
  let expected = reference_listings js in
  let s = Service.create ~domains:1 () in
  ignore (Service.run_batch s js);
  (* second pass: everything served from the cache, bytes unchanged *)
  let warm = Service.run_batch s js in
  check_identical "warm cache" expected (outcome_listings warm);
  Array.iter
    (fun (o : Service.outcome) ->
      Alcotest.(check bool)
        (o.Service.o_job.Service.j_id ^ " served warm")
        true o.Service.o_cached)
    warm;
  let st = Service.stats s in
  Alcotest.(check int) "hits cover the second pass" (List.length js)
    st.Service.st_hits

let test_stats_accounting () =
  let js = jobs () in
  let s = Service.create ~domains:1 () in
  ignore (Service.run_batch s js);
  let st = Service.stats s in
  Alcotest.(check int) "every job probed" (List.length js) st.Service.st_jobs;
  Alcotest.(check int) "probes split hit/miss" st.Service.st_jobs
    (st.Service.st_hits + st.Service.st_misses);
  Alcotest.(check int) "no errors" 0 st.Service.st_errors;
  Alcotest.(check int) "distinct keys cached"
    st.Service.st_misses st.Service.st_entries;
  Service.clear s;
  let st = Service.stats s in
  Alcotest.(check int) "clear zeroes entries" 0 st.Service.st_entries;
  Alcotest.(check int) "clear zeroes probes" 0 st.Service.st_jobs

let test_eviction () =
  let s = Service.create ~domains:1 ~capacity:3 () in
  let js =
    List.init 6 (fun i ->
        Service.job
          ~id:(Printf.sprintf "v%d" i)
          Toolkit.Yalll ~machine:"hp3"
          ~source:(Core.Workloads.yalll_program ~seed:(100 + i) ~len:8))
  in
  ignore (Service.run_batch s js);
  ignore (Service.run_batch s js);
  let st = Service.stats s in
  Alcotest.(check bool) "evictions happened" true (st.Service.st_evictions > 0);
  Alcotest.(check bool) "capacity respected" true (st.Service.st_entries <= 3);
  (* and results are still the sequential ones *)
  check_identical "post-eviction results" (reference_listings js)
    (outcome_listings (Service.run_batch s js))

(* Hammer one cache from four domains with heavily overlapping keys: 64
   jobs over 4 distinct sources.  Exercises probe/insert races; the
   accounting below only holds if no probe or insertion was lost. *)
let test_concurrent_hammer () =
  let sources =
    List.init 4 (fun i -> Core.Workloads.yalll_program ~seed:(i + 1) ~len:12)
  in
  let js =
    List.init 64 (fun i ->
        Service.job
          ~id:(Printf.sprintf "h%02d" i)
          Toolkit.Yalll ~machine:"hp3"
          ~source:(List.nth sources (i mod 4)))
  in
  let expected = reference_listings js in
  let s = Service.create () in
  let got = Service.run_batch ~domains:4 s js in
  check_identical "hammered results" expected (outcome_listings got);
  let st = Service.stats s in
  Alcotest.(check int) "no probe lost" 64 st.Service.st_jobs;
  Alcotest.(check int) "hits + misses = probes" 64
    (st.Service.st_hits + st.Service.st_misses);
  (* racing domains may each miss the same fresh key, but never more
     often than once per job, and all four keys must end up cached *)
  Alcotest.(check bool) "at least one miss per key" true
    (st.Service.st_misses >= 4);
  Alcotest.(check int) "all four keys cached" 4 st.Service.st_entries

let test_error_outcome () =
  let s = Service.create ~domains:1 () in
  let js =
    [
      Service.job ~id:"bad-src" Toolkit.Yalll ~machine:"hp3" ~source:"&&&\n";
      Service.job ~id:"bad-machine" Toolkit.Yalll ~machine:"nosuch"
        ~source:"reg a\nexit\n";
      Service.job ~id:"good" Toolkit.Yalll ~machine:"hp3"
        ~source:(Core.Workloads.yalll_program ~seed:1 ~len:4);
    ]
  in
  let out = Service.run_batch s js in
  (match out.(0).Service.o_result with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "syntax error must surface as a diagnostic");
  (match out.(1).Service.o_result with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown machine must surface as a diagnostic");
  (match out.(2).Service.o_result with
  | Ok _ -> ()
  | Error d -> Alcotest.failf "good job failed: %s" (Diag.to_string d));
  let st = Service.stats s in
  Alcotest.(check int) "two errors counted" 2 st.Service.st_errors;
  (* errors are not cached: a retry recompiles *)
  let again = Service.run_batch s js in
  Alcotest.(check bool) "error retried, not served warm" false
    again.(0).Service.o_cached

(* -- the exception firewall, retries, deadlines, fail-fast ------------------- *)

let small_jobs n =
  List.init n (fun i ->
      Service.job
        ~id:(Printf.sprintf "fw%d" i)
        Toolkit.Yalll ~machine:"hp3"
        ~source:(Core.Workloads.yalll_program ~seed:(200 + i) ~len:6))

let test_capture_firewall () =
  (match Toolkit.capture (fun () -> 42) with
  | Ok v -> Alcotest.(check int) "value through" 42 v
  | Error _ -> Alcotest.fail "no error expected");
  (match Toolkit.capture (fun () -> failwith "boom") with
  | Error d ->
      Alcotest.(check bool) "internal phase" true (d.Diag.phase = Diag.Internal);
      Alcotest.(check bool) "exception text carried" true
        (String.length d.Diag.message >= 4)
  | Ok _ -> Alcotest.fail "raise must be captured");
  match Toolkit.capture (fun () -> Diag.error Diag.Parsing "structured") with
  | Error d ->
      Alcotest.(check bool) "diag passed through" true
        (d.Diag.phase = Diag.Parsing)
  | Ok _ -> Alcotest.fail "diagnostic must be captured"

(* Every attempt raises and there are no retries: the batch must still
   produce one outcome per job — each a structured internal-error
   diagnostic — instead of dying through Domain.join. *)
let test_firewall_confines_crashes () =
  let js = small_jobs 6 in
  let s = Service.create () in
  let faults =
    { Service.f_seed = 1; f_raise = 1.0; f_delay = 0.0; f_delay_ms = 0.0 }
  in
  let out = Service.run_batch ~domains:3 ~faults s js in
  Alcotest.(check int) "one outcome per job" 6 (Array.length out);
  Array.iter
    (fun (o : Service.outcome) ->
      match o.Service.o_result with
      | Error d ->
          Alcotest.(check bool) "internal finding" true
            (d.Diag.phase = Diag.Internal)
      | Ok _ -> Alcotest.fail "every attempt was made to raise")
    out;
  let st = Service.stats s in
  Alcotest.(check int) "every job an error" 6 st.Service.st_errors;
  Alcotest.(check int) "every crash counted" 6 st.Service.st_internal;
  Alcotest.(check int) "no retries without a policy" 0 st.Service.st_retries

(* Crashes at p=0.5 with retries enabled: the whole batch must recover,
   producing results byte-identical to fault-free sequential compiles. *)
let test_retries_recover () =
  let js = small_jobs 8 in
  let expected = reference_listings js in
  let s = Service.create () in
  let policy =
    { Service.default_policy with Service.p_retries = 12; p_backoff_ms = 0.1 }
  in
  let faults =
    { Service.f_seed = 7; f_raise = 0.5; f_delay = 0.0; f_delay_ms = 0.0 }
  in
  let out = Service.run_batch ~domains:3 ~policy ~faults s js in
  check_identical "recovered results" expected (outcome_listings out);
  let st = Service.stats s in
  Alcotest.(check bool) "some attempts crashed" true (st.Service.st_internal > 0);
  Alcotest.(check bool) "crashes were retried" true (st.Service.st_retries > 0);
  Alcotest.(check int) "no job left failed" 0 st.Service.st_errors

(* A structured compile error is deterministic: retrying it would fail
   identically, so the policy must not burn attempts on it. *)
let test_diagnostics_not_retried () =
  let s = Service.create ~domains:1 () in
  let policy = { Service.default_policy with Service.p_retries = 5 } in
  let out =
    Service.run_batch ~policy s
      [ Service.job ~id:"bad" Toolkit.Yalll ~machine:"hp3" ~source:"&&&\n" ]
  in
  (match out.(0).Service.o_result with
  | Error d ->
      Alcotest.(check bool) "still the parse diagnostic" true
        (d.Diag.phase = Diag.Parsing)
  | Ok _ -> Alcotest.fail "bad source must fail");
  let st = Service.stats s in
  Alcotest.(check int) "no retries" 0 st.Service.st_retries;
  Alcotest.(check int) "no internal errors" 0 st.Service.st_internal

let test_deadline_overrun () =
  let s = Service.create ~domains:1 () in
  let policy =
    { Service.default_policy with Service.p_deadline_ms = Some 5.0 }
  in
  let faults =
    { Service.f_seed = 1; f_raise = 0.0; f_delay = 1.0; f_delay_ms = 30.0 }
  in
  let out = Service.run_batch ~policy ~faults s (small_jobs 2) in
  Array.iter
    (fun (o : Service.outcome) ->
      match o.Service.o_result with
      | Error d ->
          Alcotest.(check bool) "internal finding" true
            (d.Diag.phase = Diag.Internal);
          Alcotest.(check bool) "says deadline" true
            (String.length d.Diag.message >= 8
            && String.sub d.Diag.message 0 8 = "deadline")
      | Ok _ -> Alcotest.fail "30 ms of injected delay over a 5 ms budget")
    out;
  let st = Service.stats s in
  Alcotest.(check int) "deadline failures counted" 2 st.Service.st_deadline;
  (* overrun results are discarded, never cached late *)
  Alcotest.(check int) "nothing cached" 0 st.Service.st_entries

let test_fail_fast () =
  let good i =
    Service.job
      ~id:(Printf.sprintf "g%d" i)
      Toolkit.Yalll ~machine:"hp3"
      ~source:(Core.Workloads.yalll_program ~seed:(300 + i) ~len:4)
  in
  let js =
    [ Service.job ~id:"bad" Toolkit.Yalll ~machine:"hp3" ~source:"&&&\n";
      good 1; good 2 ]
  in
  (* keep-going (the default): the failure does not stop the others *)
  let s = Service.create ~domains:1 () in
  let out = Service.run_batch s js in
  Alcotest.(check bool) "job 1 ran" true (Result.is_ok out.(1).Service.o_result);
  Alcotest.(check bool) "job 2 ran" true (Result.is_ok out.(2).Service.o_result);
  (* fail-fast: with one domain the pickup order is the job order, so
     both later jobs are deterministically canceled *)
  let s = Service.create ~domains:1 () in
  let policy = { Service.default_policy with Service.p_keep_going = false } in
  let out = Service.run_batch ~policy s js in
  (match out.(0).Service.o_result with
  | Error d ->
      Alcotest.(check bool) "original failure kept" true
        (d.Diag.phase = Diag.Parsing)
  | Ok _ -> Alcotest.fail "bad source must fail");
  Array.iter
    (fun i ->
      match out.(i).Service.o_result with
      | Error d ->
          Alcotest.(check bool)
            (Printf.sprintf "job %d canceled" i)
            true
            (d.Diag.phase = Diag.Internal
            && String.length d.Diag.message >= 8
            && String.sub d.Diag.message 0 8 = "canceled")
      | Ok _ -> Alcotest.failf "job %d must be canceled" i)
    [| 1; 2 |];
  let st = Service.stats s in
  Alcotest.(check int) "canceled counted" 2 st.Service.st_canceled;
  Alcotest.(check int) "all three errors" 3 st.Service.st_errors;
  Alcotest.(check int) "canceled jobs never probed" 1 st.Service.st_jobs

(* -- the persistent disk layer ----------------------------------------------- *)

let with_cache_dir f =
  let dir = Filename.temp_dir "msl-service-test" "" in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun name ->
          try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

(* distinct sources only, so the disk-hit accounting below is exact *)
let disk_jobs () =
  List.init 6 (fun i ->
      Service.job
        ~id:(Printf.sprintf "d%d" i)
        Toolkit.Yalll ~machine:"hp3"
        ~source:(Core.Workloads.yalll_program ~seed:(400 + i) ~len:8))

let test_disk_survives_restart () =
  with_cache_dir (fun dir ->
      let js = disk_jobs () in
      let expected = reference_listings js in
      let s1 = Service.create ~domains:1 ~cache_dir:dir () in
      check_identical "cold populate" expected
        (outcome_listings (Service.run_batch s1 js));
      let st1 = Service.stats s1 in
      Alcotest.(check int) "every miss stored" 6 st1.Service.st_disk_stores;
      Alcotest.(check int) "no disk hits cold" 0 st1.Service.st_disk_hits;
      (* a brand-new service on the same directory models a process
         restart: everything must come back from disk, byte-identical *)
      let s2 = Service.create ~domains:1 ~cache_dir:dir () in
      let out = Service.run_batch s2 js in
      check_identical "served from disk" expected (outcome_listings out);
      Array.iter
        (fun (o : Service.outcome) ->
          Alcotest.(check bool) "reported cached" true o.Service.o_cached)
        out;
      let st2 = Service.stats s2 in
      Alcotest.(check int) "all from disk" 6 st2.Service.st_disk_hits;
      Alcotest.(check int) "disk hits are hits" 6 st2.Service.st_hits;
      Alcotest.(check int) "no recompiles" 0 st2.Service.st_misses;
      Alcotest.(check int) "no rewrites" 0 st2.Service.st_disk_stores)

(* Corrupt entries — truncation, garbage, a stale or foreign header —
   must read as misses that recompile and heal the file, never as wrong
   results or exceptions. *)
let test_disk_corruption_tolerated () =
  with_cache_dir (fun dir ->
      let js = disk_jobs () in
      let expected = reference_listings js in
      let s1 = Service.create ~domains:1 ~cache_dir:dir () in
      ignore (Service.run_batch s1 js);
      let files =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".mslc")
        |> List.sort compare
      in
      Alcotest.(check int) "one file per entry" 6 (List.length files);
      let clobber i content =
        let oc = open_out_bin (Filename.concat dir (List.nth files i)) in
        output_string oc content;
        close_out oc
      in
      clobber 0 "";  (* empty file *)
      clobber 1 "total garbage, not even a header\n\xff\xfe";
      clobber 2 "msl-cache 999 future-version -\ngarbage";  (* wrong header *)
      (let path = Filename.concat dir (List.nth files 3) in
       (* keep a valid header but truncate the marshalled payload *)
       let ic = open_in_bin path in
       let header = input_line ic in
       close_in ic;
       let oc = open_out_bin path in
       output_string oc (header ^ "\n\000\000");
       close_out oc);
      let s2 = Service.create ~domains:1 ~cache_dir:dir () in
      let out = Service.run_batch s2 js in
      check_identical "corruption never changes results" expected
        (outcome_listings out);
      let st = Service.stats s2 in
      Alcotest.(check int) "intact entries hit" 2 st.Service.st_disk_hits;
      Alcotest.(check int) "corrupt entries recompiled" 4 st.Service.st_misses;
      Alcotest.(check int) "corrupt entries healed" 4 st.Service.st_disk_stores;
      (* healed: one more restart now hits everything *)
      let s3 = Service.create ~domains:1 ~cache_dir:dir () in
      ignore (Service.run_batch s3 js);
      Alcotest.(check int) "all healed" 6 (Service.stats s3).Service.st_disk_hits)

(* A crash between the tmp write and the rename strands a
   *.tmp.<pid>.<domain> file; Service.create must sweep the ones whose
   writer is dead and leave everything else — live writers' tmp files
   and completed entries — alone. *)
let test_stale_tmp_sweep () =
  with_cache_dir (fun dir ->
      let js = disk_jobs () in
      let s1 = Service.create ~domains:1 ~cache_dir:dir () in
      ignore (Service.run_batch s1 js);
      (* a pid that is certainly dead: a just-reaped child *)
      let dead_pid =
        let pid =
          Unix.create_process "true" [| "true" |] Unix.stdin Unix.stdout
            Unix.stderr
        in
        ignore (Unix.waitpid [] pid);
        pid
      in
      let plant name = close_out (open_out_bin (Filename.concat dir name)) in
      let stale1 = Printf.sprintf "abc123.mslc.tmp.%d.0" dead_pid in
      let stale2 = Printf.sprintf "def456.msso.tmp.%d.3" dead_pid in
      let live = Printf.sprintf "ghi789.mslc.tmp.%d.0" (Unix.getpid ()) in
      let odd = "notatmpfile.tmp.not.numeric" in
      plant stale1;
      plant stale2;
      plant live;
      plant odd;
      let s2 = Service.create ~domains:1 ~cache_dir:dir () in
      let present name = Sys.file_exists (Filename.concat dir name) in
      Alcotest.(check bool) "dead-pid tmp swept" false (present stale1);
      Alcotest.(check bool) "dead-pid memo tmp swept" false (present stale2);
      Alcotest.(check bool) "live-pid tmp kept" true (present live);
      Alcotest.(check bool) "non-tmp-pattern kept" true (present odd);
      (* the valid entries survived the sweep: everything hits *)
      ignore (Service.run_batch s2 js);
      let st = Service.stats s2 in
      Alcotest.(check int) "entries intact after sweep" 6
        st.Service.st_disk_hits;
      Alcotest.(check int) "nothing recompiled" 0 st.Service.st_misses)

(* Satellite: N domains hammering a small key set, with the persistent
   layer in play and a memory cache far smaller than the key set — the
   stats invariants must hold under eviction/promote/store races. *)
let test_multidomain_disk_stress () =
  with_cache_dir (fun dir ->
      let sources =
        List.init 4 (fun i -> Core.Workloads.yalll_program ~seed:(i + 1) ~len:8)
      in
      let js =
        List.init 96 (fun i ->
            Service.job
              ~id:(Printf.sprintf "sd%02d" i)
              Toolkit.Yalll ~machine:"hp3"
              ~source:(List.nth sources (i mod 4)))
      in
      let expected = reference_listings js in
      let s = Service.create ~capacity:2 ~cache_dir:dir () in
      let out = Service.run_batch ~domains:6 s js in
      check_identical "stressed results" expected (outcome_listings out);
      let st = Service.stats s in
      Alcotest.(check int) "no probe lost" 96 st.Service.st_jobs;
      Alcotest.(check int) "hits + misses = jobs" 96
        (st.Service.st_hits + st.Service.st_misses);
      Alcotest.(check bool) "entries bounded by capacity" true
        (st.Service.st_entries <= 2);
      Alcotest.(check bool) "evictions bounded by insertions" true
        (st.Service.st_entries + st.Service.st_evictions
        <= st.Service.st_misses + st.Service.st_disk_hits);
      Alcotest.(check int) "no errors under stress" 0 st.Service.st_errors)

(* -- eviction accounting (FIFO re-insert regression) -------------------------- *)

(* Re-proving the FIFO queue bookkeeping: keys re-inserted after probes,
   hits and evictions must neither inflate the eviction count nor evict
   a live entry early.  Deterministic with one domain, so the counts are
   pinned exactly. *)
let test_eviction_accounting_exact () =
  let key i =
    Service.job
      ~id:(Printf.sprintf "k%d" i)
      Toolkit.Yalll ~machine:"hp3"
      ~source:(Core.Workloads.yalll_program ~seed:(500 + i) ~len:6)
  in
  let a = key 0 and b = key 1 and c = key 2 and d = key 3 in
  let round = [ a; a; b; b; c; c; d; d ] in
  let s = Service.create ~domains:1 ~capacity:3 () in
  ignore (Service.run_batch s round);
  let st = Service.stats s in
  (* A B C fill the cache; D evicts A; each duplicate hits *)
  Alcotest.(check int) "round 1: one eviction" 1 st.Service.st_evictions;
  Alcotest.(check int) "round 1: four hits" 4 st.Service.st_hits;
  Alcotest.(check int) "round 1: full" 3 st.Service.st_entries;
  ignore (Service.run_batch s round);
  let st = Service.stats s in
  (* every key comes back around: 4 more misses, 4 more evictions *)
  Alcotest.(check int) "round 2: five total" 5 st.Service.st_evictions;
  Alcotest.(check int) "round 2: eight hits" 8 st.Service.st_hits;
  Alcotest.(check int) "round 2: still full" 3 st.Service.st_entries;
  (* the survivors are exactly the last three inserted: B C D live *)
  let out = Service.run_batch s [ b; c; d ] in
  Array.iter
    (fun (o : Service.outcome) ->
      Alcotest.(check bool)
        (o.Service.o_job.Service.j_id ^ " survived")
        true o.Service.o_cached)
    out;
  (* the stated bound is strict at every capacity: a capacity-1 cache
     holds exactly one entry — the newest — never a transient second *)
  let s1 = Service.create ~domains:1 ~capacity:1 () in
  ignore (Service.run_batch s1 [ a; b; c ]);
  let st = Service.stats s1 in
  Alcotest.(check int) "capacity 1: one entry" 1 st.Service.st_entries;
  Alcotest.(check int) "capacity 1: two evictions" 2 st.Service.st_evictions;
  let out = Service.run_batch s1 [ c ] in
  Alcotest.(check bool) "capacity 1: newest survives" true
    out.(0).Service.o_cached;
  let out = Service.run_batch s1 [ b ] in
  Alcotest.(check bool) "capacity 1: older was evicted" false
    out.(0).Service.o_cached

(* -- cache keys ------------------------------------------------------------- *)

let test_cache_key_sensitivity () =
  let base =
    Service.job Toolkit.Yalll ~machine:"hp3" ~source:"reg a\nexit\n"
  in
  let k = Service.cache_key base in
  let differs what j =
    Alcotest.(check bool) (what ^ " changes the key") false
      (Msl_util.Fingerprint.equal k (Service.cache_key j))
  in
  differs "source" { base with Service.j_source = "reg a\nexit a\n" };
  differs "machine" { base with Service.j_machine = "b17" };
  differs "language" { base with Service.j_language = Toolkit.Simpl };
  differs "microops" { base with Service.j_use_microops = true };
  differs "compaction algorithm"
    {
      base with
      Service.j_options =
        { Pipeline.default_options with algo = Compaction.Fcfs };
    };
  differs "chaining"
    {
      base with
      Service.j_options = { Pipeline.default_options with chain = false };
    };
  (* ... while the id is a label, not an input *)
  Alcotest.(check bool) "id does not change the key" true
    (Msl_util.Fingerprint.equal k
       (Service.cache_key { base with Service.j_id = "renamed" }))

(* The options half of the key is Pipeline.options_id, an exhaustive
   record-to-string: vary every single field of Pipeline.options and
   check no two of the resulting records share a cache key.  This is
   the regression test for the hand-enumerated id that silently dropped
   newly added fields. *)
let test_options_key_exhaustive () =
  let base = Pipeline.default_options in
  let variants =
    [
      ("default", base);
      ("algo", { base with Pipeline.algo = Compaction.Optimal });
      ("chain", { base with Pipeline.chain = false });
      ("strategy", { base with Pipeline.strategy = Msl_mir.Regalloc.First_fit });
      ("pool_limit", { base with Pipeline.pool_limit = Some 4 });
      ("poll", { base with Pipeline.poll = true });
      ("trap_safe", { base with Pipeline.trap_safe = true });
      ("opt_level", { base with Pipeline.opt_level = 0 });
      ("bb_budget", { base with Pipeline.bb_budget = 7 });
      ("superopt", { base with Pipeline.superopt = true });
    ]
  in
  let key options =
    Service.cache_key
      (Service.job ~options Toolkit.Yalll ~machine:"hp3"
         ~source:"reg a\nexit\n")
  in
  List.iteri
    (fun i (ni, oi) ->
      List.iteri
        (fun j (nj, oj) ->
          if i < j then
            Alcotest.(check bool)
              (Printf.sprintf "%s and %s share no key" ni nj)
              false
              (Msl_util.Fingerprint.equal (key oi) (key oj)))
        variants)
    variants

(* -- manifests ----------------------------------------------------------------- *)

let mem_load = function
  | "a.yll" -> "reg a\nexit\n"
  | "b.simpl" -> "begin 1 -> R1; end"
  | path -> raise (Sys_error (path ^ ": no such test source"))

let test_manifest_parse () =
  let text =
    "# a comment\n\
     \n\
     yalll hp3 a.yll\n\
     simpl b17 b.simpl algo=fcfs chain=off id=renamed pool=4\n\
     empl hp3 a.yll strategy=first-fit trap_safe=on microops=on  # trailing\n\
     yalll hp3 a.yll algo=optimal bb_budget=123\n"
  in
  let js = Service.parse_manifest ~load:mem_load text in
  Alcotest.(check int) "four jobs" 4 (List.length js);
  let j1 = List.nth js 0 and j2 = List.nth js 1 and j3 = List.nth js 2 in
  Alcotest.(check string) "default id" "a.yll@hp3" j1.Service.j_id;
  Alcotest.(check string) "machine canonicalised" "B17" j2.Service.j_machine;
  Alcotest.(check string) "id override" "renamed" j2.Service.j_id;
  Alcotest.(check bool) "algo parsed" true
    (j2.Service.j_options.Pipeline.algo = Compaction.Fcfs);
  Alcotest.(check bool) "chain parsed" false j2.Service.j_options.Pipeline.chain;
  Alcotest.(check (option int)) "pool parsed" (Some 4)
    j2.Service.j_options.Pipeline.pool_limit;
  Alcotest.(check bool) "strategy parsed" true
    (j3.Service.j_options.Pipeline.strategy = Msl_mir.Regalloc.First_fit);
  Alcotest.(check bool) "trap_safe parsed" true
    j3.Service.j_options.Pipeline.trap_safe;
  Alcotest.(check bool) "microops parsed" true j3.Service.j_use_microops;
  let j4 = List.nth js 3 in
  Alcotest.(check int) "bb_budget parsed" 123
    j4.Service.j_options.Pipeline.bb_budget

let test_manifest_errors () =
  let rejects what text =
    match Service.parse_manifest ~load:mem_load text with
    | exception Diag.Error d ->
        Alcotest.(check bool)
          (what ^ " is a parsing diagnostic")
          true
          (d.Diag.phase = Diag.Parsing)
    | _ -> Alcotest.failf "%s: expected a diagnostic" what
  in
  rejects "short line" "yalll hp3\n";
  rejects "unknown language" "cobol hp3 a.yll\n";
  rejects "unknown machine" "yalll pdp11 a.yll\n";
  rejects "unreadable source" "yalll hp3 missing.yll\n";
  rejects "unknown option key" "yalll hp3 a.yll colour=red\n";
  rejects "bad boolean" "yalll hp3 a.yll chain=maybe\n";
  rejects "bad pool" "yalll hp3 a.yll pool=-3\n";
  rejects "bad algo" "yalll hp3 a.yll algo=magic\n";
  rejects "bad bb_budget" "yalll hp3 a.yll bb_budget=0\n"

(* batch over a parsed manifest equals sequential compiles of the same *)
let test_manifest_end_to_end () =
  let text =
    "yalll hp3 a.yll\nyalll b17 a.yll\nsimpl hp3 b.simpl\n\
     yalll hp3 a.yll id=dup\n"
  in
  let js = Service.parse_manifest ~load:mem_load text in
  let s = Service.create ~domains:1 () in
  let out = Service.run_batch s js in
  check_identical "manifest batch" (reference_listings js)
    (outcome_listings out);
  Alcotest.(check bool) "duplicate line hits even when cold" true
    out.(3).Service.o_cached

(* -- the serve daemon ------------------------------------------------------- *)

module Serve = Msl_core.Serve
module Trace = Msl_util.Trace
module Clock = Msl_util.Clock

(* Start a server on a socket in a throwaway directory, run [f], and
   always stop the daemon and remove the directory — even on a failing
   assertion, so one red test cannot leak a daemon into the next. *)
let with_server ?(queue_cap = 4) ?(client_cap = 2) ?(domains = 3) f =
  let dir = Filename.temp_file "msl-serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let socket = Filename.concat dir "serve.sock" in
  let cfg =
    {
      (Serve.default_config ~socket) with
      Serve.sc_queue_cap = queue_cap;
      sc_client_cap = client_cap;
      sc_domains = Some domains;
    }
  in
  let srv = Serve.start cfg in
  Fun.protect
    ~finally:(fun () ->
      Serve.stop srv;
      Serve.wait srv;
      (try Sys.remove socket with Sys_error _ -> ());
      (try Unix.rmdir dir with Unix.Unix_error _ -> ()))
    (fun () -> f srv socket)

let parse_response line =
  match Trace.parse_json line with
  | Error e -> Alcotest.failf "unparseable response %S: %s" line e
  | Ok (Trace.J_obj fields) ->
      let id =
        match List.assoc_opt "id" fields with
        | Some (Trace.J_str v) -> v
        | _ -> Alcotest.failf "response without an id: %s" line
      in
      let ok =
        match List.assoc_opt "ok" fields with
        | Some (Trace.J_bool v) -> v
        | _ -> Alcotest.failf "response without ok: %s" line
      in
      (id, ok, fields)
  | Ok _ -> Alcotest.failf "response is not a JSON object: %s" line

let response_bool name fields =
  match List.assoc_opt name fields with
  | Some (Trace.J_bool v) -> v
  | _ -> Alcotest.failf "response lacks boolean field %S" name

let response_str name fields =
  match List.assoc_opt name fields with
  | Some (Trace.J_str v) -> v
  | _ -> Alcotest.failf "response lacks string field %S" name

(* One client connection pipelining [n] compile requests: a sender
   thread streams all the request lines while this thread receives, so
   the test cannot deadlock against the server's admission pushback.
   Asserts the zero-dropped/zero-duplicated contract on the way out:
   the connection gets back exactly its own ids, each exactly once,
   each ok. *)
let run_client ?(len = 6) ~socket ~tag ~n ~seed0 () =
  let conn = Serve.Client.connect socket in
  let ids = List.init n (fun i -> Printf.sprintf "%s-%d" tag i) in
  let sender =
    Thread.create
      (fun () ->
        List.iteri
          (fun i id ->
            let source =
              Core.Workloads.yalll_program ~seed:(seed0 + i) ~len
            in
            Serve.Client.send_line conn
              (Serve.request ~op:"compile" ~id ~language:"yalll"
                 ~machine:"hp3" ~source ()))
          ids)
      ()
  in
  let got = ref [] in
  for _ = 1 to n do
    match Serve.Client.recv_line conn with
    | None -> Alcotest.failf "%s: server closed the connection early" tag
    | Some line -> got := parse_response line :: !got
  done;
  Thread.join sender;
  Serve.Client.close conn;
  let got = List.rev !got in
  let got_ids = List.sort compare (List.map (fun (id, _, _) -> id) got) in
  Alcotest.(check (list string))
    (tag ^ ": exactly its own ids, once each")
    (List.sort compare ids) got_ids;
  List.iter
    (fun (id, ok, fields) ->
      if not ok then
        Alcotest.failf "%s: job %s failed: %s" tag id
          (response_str "error" fields))
    got;
  got

(* The saturation suite: three clients each pipeline far more requests
   than the global queue bound (40 in flight against queue_cap 4,
   client_cap 2).  Negotiated flow must hold every invariant at once:
   nothing dropped, nothing duplicated, nothing failed, and the global
   queue's high-water mark never above its bound. *)
let test_serve_saturation () =
  with_server ~queue_cap:4 ~client_cap:2 ~domains:3 (fun srv socket ->
      let n = 40 in
      let nclients = 3 in
      let threads =
        List.init nclients (fun k ->
            Thread.create
              (fun () ->
                ignore
                  (run_client ~socket
                     ~tag:(Printf.sprintf "c%d" k)
                     ~n ~seed0:(1 + (k * 100)) ()))
              ())
      in
      List.iter Thread.join threads;
      let sv = Serve.stats srv in
      Alcotest.(check int) "every request answered" (n * nclients)
        sv.Serve.sv_responses;
      Alcotest.(check int) "no error responses" 0 sv.Serve.sv_errors;
      if sv.Serve.sv_queue_peak > 4 then
        Alcotest.failf "queue bound violated: peak %d > cap 4"
          sv.Serve.sv_queue_peak;
      let st = Service.stats (Serve.service srv) in
      Alcotest.(check int) "no job errors" 0 st.Service.st_errors)

(* Fairness: a flooding client and a small client start together; the
   small client's five jobs must not be starved behind the flood's
   sixty.  Round-robin pickup plus the per-client cap bound the small
   client's wait to a few sibling jobs, so it finishes first. *)
let test_serve_fairness () =
  with_server ~queue_cap:4 ~client_cap:2 ~domains:2 (fun _srv socket ->
      let t_flood = ref 0.0 and t_small = ref 0.0 in
      let flood =
        Thread.create
          (fun () ->
            ignore (run_client ~len:20 ~socket ~tag:"flood" ~n:60 ~seed0:500 ());
            t_flood := Clock.now_s ())
          ()
      in
      let small =
        Thread.create
          (fun () ->
            ignore (run_client ~len:6 ~socket ~tag:"small" ~n:5 ~seed0:900 ());
            t_small := Clock.now_s ())
          ()
      in
      Thread.join small;
      Thread.join flood;
      if !t_small > !t_flood then
        Alcotest.failf
          "small client starved: finished %.3f s after the flood"
          (!t_small -. !t_flood))

(* The shared cache: a result computed for one connection is a memory
   hit for the next one. *)
let test_serve_shared_cache () =
  with_server ~domains:2 (fun _srv socket ->
      let source = Core.Workloads.yalll_program ~seed:7 ~len:8 in
      let ask tag =
        let conn = Serve.Client.connect socket in
        Serve.Client.send_line conn
          (Serve.request ~op:"compile" ~id:tag ~language:"yalll"
             ~machine:"hp3" ~source ());
        let r =
          match Serve.Client.recv_line conn with
          | Some line -> parse_response line
          | None -> Alcotest.failf "%s: connection closed" tag
        in
        Serve.Client.close conn;
        r
      in
      let _, ok1, f1 = ask "first" in
      let _, ok2, f2 = ask "second" in
      Alcotest.(check bool) "first ok" true ok1;
      Alcotest.(check bool) "second ok" true ok2;
      Alcotest.(check bool) "first is a miss" false (response_bool "cached" f1);
      Alcotest.(check bool) "second connection hits the shared cache" true
        (response_bool "cached" f2))

(* Protocol robustness: malformed and invalid requests get an ok:false
   answer on the same connection, which keeps serving afterwards. *)
let test_serve_protocol_errors () =
  with_server ~domains:2 (fun srv socket ->
      let conn = Serve.Client.connect socket in
      let expect_error what =
        match Serve.Client.recv_line conn with
        | None -> Alcotest.failf "%s: connection closed" what
        | Some line ->
            let _, ok, fields = parse_response line in
            Alcotest.(check bool) (what ^ " is refused") false ok;
            ignore (response_str "error" fields)
      in
      Serve.Client.send_line conn "this is not json";
      expect_error "malformed JSON";
      Serve.Client.send_line conn
        (Serve.json_line
           [ ("op", Trace.J_str "frobnicate"); ("id", Trace.J_str "x") ]);
      expect_error "unknown op";
      Serve.Client.send_line conn
        (Serve.json_line
           [ ("op", Trace.J_str "compile"); ("id", Trace.J_str "nosrc") ]);
      expect_error "compile without source";
      (* the same connection still serves real work *)
      Serve.Client.send_line conn
        (Serve.request ~op:"compile" ~id:"good" ~language:"yalll"
           ~machine:"hp3"
           ~source:(Core.Workloads.yalll_program ~seed:3 ~len:6)
           ());
      (match Serve.Client.recv_line conn with
      | None -> Alcotest.fail "connection dead after protocol errors"
      | Some line ->
          let id, ok, _ = parse_response line in
          Alcotest.(check string) "good job answered" "good" id;
          Alcotest.(check bool) "good job ok" true ok);
      Serve.Client.send_line conn (Serve.request ~op:"stats" ~id:"st" ());
      (match Serve.Client.recv_line conn with
      | None -> Alcotest.fail "no stats response"
      | Some line ->
          let id, ok, fields = parse_response line in
          Alcotest.(check string) "stats id" "st" id;
          Alcotest.(check bool) "stats ok" true ok;
          (match List.assoc_opt "resp_errors" fields with
          | Some (Trace.J_num n) ->
              Alcotest.(check int) "three errors counted" 3 (int_of_float n)
          | _ -> Alcotest.fail "stats lacks resp_errors"));
      Serve.Client.close conn;
      Alcotest.(check int) "server counted the errors" 3
        (Serve.stats srv).Serve.sv_errors)

(* A client's [shutdown] is acknowledged, then the daemon exits and
   removes its socket. *)
let test_serve_shutdown_request () =
  with_server ~domains:2 (fun srv socket ->
      let conn = Serve.Client.connect socket in
      Serve.Client.send_line conn (Serve.request ~op:"shutdown" ~id:"bye" ());
      (match Serve.Client.recv_line conn with
      | None -> Alcotest.fail "shutdown not acknowledged"
      | Some line ->
          let id, ok, _ = parse_response line in
          Alcotest.(check string) "ack id" "bye" id;
          Alcotest.(check bool) "ack ok" true ok);
      Serve.Client.close conn;
      Serve.wait srv;
      Alcotest.(check bool) "socket file removed on exit" false
        (Sys.file_exists socket))

let () =
  Alcotest.run "service"
    [
      ( "determinism",
        [
          Alcotest.test_case "batch = sequential compiles" `Quick
            test_batch_matches_sequential;
          Alcotest.test_case "1 domain = 4 domains" `Quick
            test_domain_count_invariance;
          Alcotest.test_case "warm cache = cold cache" `Quick
            test_warm_cache_invariance;
        ] );
      ( "cache",
        [
          Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
          Alcotest.test_case "bounded capacity evicts" `Quick test_eviction;
          Alcotest.test_case "eviction accounting is exact" `Quick
            test_eviction_accounting_exact;
          Alcotest.test_case "key sensitivity" `Quick test_cache_key_sensitivity;
          Alcotest.test_case "every options field keys distinctly" `Quick
            test_options_key_exhaustive;
          Alcotest.test_case "errors surface and are not cached" `Quick
            test_error_outcome;
        ] );
      ( "faults",
        [
          Alcotest.test_case "capture firewall" `Quick test_capture_firewall;
          Alcotest.test_case "crashes confined to their job" `Quick
            test_firewall_confines_crashes;
          Alcotest.test_case "retries recover the batch" `Quick
            test_retries_recover;
          Alcotest.test_case "diagnostics are not retried" `Quick
            test_diagnostics_not_retried;
          Alcotest.test_case "deadline overrun" `Quick test_deadline_overrun;
          Alcotest.test_case "fail-fast cancels the tail" `Quick test_fail_fast;
        ] );
      ( "disk",
        [
          Alcotest.test_case "cache survives a restart" `Quick
            test_disk_survives_restart;
          Alcotest.test_case "corruption tolerated and healed" `Quick
            test_disk_corruption_tolerated;
          Alcotest.test_case "stale tmp files swept on create" `Quick
            test_stale_tmp_sweep;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "4-domain hammer on overlapping keys" `Quick
            test_concurrent_hammer;
          Alcotest.test_case "6-domain hammer with disk and eviction" `Quick
            test_multidomain_disk_stress;
        ] );
      ( "manifest",
        [
          Alcotest.test_case "parse" `Quick test_manifest_parse;
          Alcotest.test_case "malformed lines" `Quick test_manifest_errors;
          Alcotest.test_case "end to end" `Quick test_manifest_end_to_end;
        ] );
      ( "serve",
        [
          Alcotest.test_case "saturation under negotiated flow" `Quick
            test_serve_saturation;
          Alcotest.test_case "fairness under a flooding client" `Quick
            test_serve_fairness;
          Alcotest.test_case "cache shared across connections" `Quick
            test_serve_shared_cache;
          Alcotest.test_case "protocol errors answered, connection kept"
            `Quick test_serve_protocol_errors;
          Alcotest.test_case "shutdown request stops the daemon" `Quick
            test_serve_shutdown_request;
        ] );
    ]
