(* Tests for the middle end: dataflow, compaction, selection, allocation,
   lowering, poll points, and the full pipeline on all four machines. *)

open Msl_bitvec
open Msl_machine
open Msl_mir
module Diag = Msl_util.Diag

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let bv w v = Bitvec.of_int ~width:w v

let reg d name = Mir.Phys (Desc.get_reg d name).Desc.r_id

let block label stmts term = { Mir.b_label = label; b_stmts = stmts; b_term = term }

let prog ?(procs = []) ?(nvregs = 0) blocks =
  { Mir.main = blocks; procs; vreg_names = []; next_vreg = nvregs }

let run_mir ?options ?setup d p =
  let sim, _labels, metrics = Pipeline.load ?options d p in
  (match setup with Some f -> f sim | None -> ());
  (match Sim.run sim with
  | Sim.Halted -> ()
  | Sim.Out_of_fuel -> Alcotest.fail "program did not halt");
  (sim, metrics)

(* -- dataflow ------------------------------------------------------------- *)

let test_stmt_levels () =
  let d = Machines.hp3 in
  let r n = reg d n in
  (* four independent assignments: all level 0 *)
  let independent =
    [
      Mir.assign (r "R1") (Mir.R_const (bv 16 1));
      Mir.assign (r "R2") (Mir.R_const (bv 16 2));
      Mir.assign (r "R3") (Mir.R_const (bv 16 3));
      Mir.assign (r "R4") (Mir.R_const (bv 16 4));
    ]
  in
  Alcotest.(check (list int)) "independent" [ 0; 0; 0; 0 ]
    (Dataflow.stmt_levels independent);
  (* a chain: each level one deeper *)
  let chain =
    [
      Mir.assign (r "R1") (Mir.R_const (bv 16 1));
      Mir.assign (r "R2") (Mir.R_inc (r "R1"));
      Mir.assign (r "R3") (Mir.R_inc (r "R2"));
    ]
  in
  Alcotest.(check (list int)) "chain" [ 0; 1; 2 ] (Dataflow.stmt_levels chain);
  check_bool "parallelism of chain is 1" true
    (abs_float (Dataflow.parallelism chain -. 1.0) < 1e-9);
  check_bool "parallelism of independent is 4" true
    (abs_float (Dataflow.parallelism independent -. 4.0) < 1e-9)

let test_single_identity_war () =
  let d = Machines.hp3 in
  let r n = reg d n in
  (* x used then redefined: use must precede redefinition (WAR), but they
     may share a level — the single identity principle *)
  let stmts =
    [
      Mir.assign (r "R2") (Mir.R_inc (r "R1"));  (* use of R1 *)
      Mir.assign (r "R1") (Mir.R_const (bv 16 9));  (* redefinition *)
    ]
  in
  Alcotest.(check (list int)) "war same level" [ 0; 0 ]
    (Dataflow.stmt_levels stmts)

(* -- compaction ------------------------------------------------------------ *)

let ops_hp3 src =
  let d = Machines.hp3 in
  let prog = Masm.parse_program d src in
  List.concat_map (fun i -> i.Inst.ops) prog

(* a block with real parallelism: loads and ALU ops on disjoint registers *)
let parallel_src =
  "[ ldc R1, #1 ]\n[ ldc R2, #2 ]\n[ add R3, R1, R2 ]\n[ inc R4, R5 ]\n\
   [ shl R6, R7, #2 ]\n[ mov R8, R9 ]\n"

let test_compaction_algorithms () =
  let d = Machines.hp3 in
  let ops = ops_hp3 parallel_src in
  let count algo =
    List.length (Compaction.compact ~algo d ops).Compaction.groups
  in
  let seq = count Compaction.Sequential in
  let fcfs = count Compaction.Fcfs in
  let cp = count Compaction.Critical_path in
  let opt = count Compaction.Optimal in
  check_int "sequential = one per op" 6 seq;
  check_bool "fcfs <= sequential" true (fcfs <= seq);
  check_bool "cp <= fcfs" true (cp <= fcfs);
  check_bool "optimal <= cp" true (opt <= cp);
  check_bool "some packing happened" true (opt < seq)

let test_compaction_respects_deps () =
  let d = Machines.hp3 in
  (* chain through R1: no packing possible despite free units *)
  let ops =
    ops_hp3 "[ ldc R1, #1 ]\n[ inc R1, R1 ]\n[ add R2, R1, R1 ]\n"
  in
  List.iter
    (fun algo ->
      let r = Compaction.compact ~algo d ops in
      check_int
        (Compaction.algo_name algo ^ " chain length")
        3
        (List.length r.Compaction.groups))
    [ Compaction.Fcfs; Compaction.Critical_path; Compaction.Optimal ]

let test_compaction_vertical_forced () =
  let d = Machines.b17 in
  let prog = Masm.parse_program d "[ ldc R1, #1 ]\n[ ldc R2, #2 ]\n" in
  let ops = List.concat_map (fun i -> i.Inst.ops) prog in
  let r = Compaction.compact ~algo:Compaction.Optimal d ops in
  check_int "vertical: one op per word" 2 (List.length r.Compaction.groups);
  (* regression: the result reports the *requested* algorithm, with the
     override recorded in [forced_sequential] — T4 rows must not relabel
     vertical rows as "sequential" *)
  check_bool "r_algo is the requested algo" true
    (r.Compaction.r_algo = Compaction.Optimal);
  check_bool "forced_sequential set" true r.Compaction.forced_sequential;
  let h = Compaction.compact ~algo:Compaction.Optimal Machines.hp3 ops in
  check_bool "horizontal: not forced" false h.Compaction.forced_sequential;
  let v_seq = Compaction.compact ~algo:Compaction.Sequential d ops in
  check_bool "vertical + sequential requested: not forced" false
    v_seq.Compaction.forced_sequential

(* regression for the fcfs rewrite (reversed accumulators + doubling
   array): schedules must be structurally identical to the original
   quadratic formulation, reimplemented here as the reference. *)
let naive_fcfs ~chain d ops =
  let arr = Array.of_list ops in
  let n = Array.length arr in
  let infos, edges = Dataflow.build d arr in
  let preds = Dataflow.preds_by_dst n edges in
  let place = Array.make n (-1) in
  let mis : Inst.op list array ref = ref (Array.make 0 []) in
  let count = ref 0 in
  let mi_add k op = !mis.(k) <- !mis.(k) @ [ op ] in
  let new_mi () =
    let a = Array.make (!count + 1) [] in
    Array.blit !mis 0 a 0 !count;
    mis := a;
    incr count;
    !count - 1
  in
  for j = 0 to n - 1 do
    let earliest =
      List.fold_left
        (fun acc e ->
          max acc (place.(e.Dataflow.e_src) + Dataflow.min_delta ~chain infos e))
        0 preds.(j)
    in
    let fits k =
      List.for_all
        (fun e ->
          place.(e.Dataflow.e_src) <> k || Dataflow.same_mi_ok ~chain infos e)
        preds.(j)
      && Conflict.fits d !mis.(k) arr.(j) = Ok ()
    in
    let rec scan k =
      if k >= !count then new_mi () else if fits k then k else scan (k + 1)
    in
    let k = scan earliest in
    mi_add k arr.(j);
    place.(j) <- k
  done;
  Array.to_list (Array.sub !mis 0 !count)

let test_fcfs_matches_naive_reference () =
  let machines = [ Machines.hp3; Machines.h1; Machines.b17 ] in
  List.iter
    (fun seed ->
      let d = List.nth machines (seed mod 3) in
      let n = 4 + (seed * 7 mod 24) in
      let p_dep = seed * 13 mod 95 in
      let ops = Msl_core.Workloads.compaction_block d ~seed ~n ~p_dep in
      List.iter
        (fun chain ->
          let fast =
            (Compaction.compact ~chain ~algo:Compaction.Fcfs d ops)
              .Compaction.groups
          in
          let naive =
            naive_fcfs ~chain d ops |> List.filter (fun g -> g <> [])
          in
          check_bool
            (Printf.sprintf "seed %d %s chain=%b identical schedule" seed
               d.Desc.d_name chain)
            true (fast = naive))
        [ true; false ])
    (List.init 40 (fun i -> i + 1))

(* regression for the branch-and-bound node accounting: the reported
   node count can never exceed the budget, even when exhausted. *)
let test_optimal_budget_accounting () =
  let d = Machines.hp3 in
  let ops = ops_hp3 parallel_src in
  let r = Compaction.compact ~algo:Compaction.Optimal ~node_budget:1 d ops in
  check_bool "exhausted" false r.Compaction.exact;
  check_bool "nodes <= budget" true (r.Compaction.nodes <= 1);
  let full = Compaction.compact ~algo:Compaction.Optimal d ops in
  check_bool "full search exact" true full.Compaction.exact;
  check_bool "full search nodes within default budget" true
    (full.Compaction.nodes <= Compaction.default_node_budget)

let test_compaction_chaining () =
  (* on 3-phase H1, a mov (phase 0) can chain into an alu op (phase 1) *)
  let d = Machines.h1 in
  let prog =
    Masm.parse_program d "[ mov R2, R1 ]\n[ add R3, R2, R2 ]\n"
  in
  let ops = List.concat_map (fun i -> i.Inst.ops) prog in
  let chained =
    Compaction.compact ~chain:true ~algo:Compaction.Critical_path d ops
  in
  let unchained =
    Compaction.compact ~chain:false ~algo:Compaction.Critical_path d ops
  in
  check_int "chained packs into one word" 1 (List.length chained.Compaction.groups);
  check_int "unchained needs two" 2 (List.length unchained.Compaction.groups)

let test_compaction_empty () =
  let d = Machines.hp3 in
  let r = Compaction.compact ~algo:Compaction.Optimal d [] in
  check_int "empty block" 0 (List.length r.Compaction.groups)

(* -- pipeline end-to-end ----------------------------------------------------- *)

(* sum 1..n as a MIR loop, runnable on every machine *)
let sum_prog d n =
  let r1 = reg d "R1" and r2 = reg d "R2" in
  prog
    [
      block "entry"
        [
          Mir.assign r1 (Mir.R_const (bv d.Desc.d_word n));
          Mir.assign r2 (Mir.R_const (bv d.Desc.d_word 0));
        ]
        (Mir.Goto "loop");
      block "loop" [] (Mir.If (Mir.Nonzero r1, "body", "out"));
      block "body"
        [
          Mir.assign r2 (Mir.R_binop (Rtl.A_add, r2, r1));
          Mir.assign r1 (Mir.R_dec r1);
        ]
        (Mir.Goto "loop");
      block "out" [] Mir.Halt;
    ]

let test_pipeline_sum_all_machines () =
  List.iter
    (fun d ->
      let sim, _ = run_mir d (sum_prog d 10) in
      check_int (d.Desc.d_name ^ " sum") 55 (Bitvec.to_int (Sim.get_reg sim "R2")))
    Machines.all

let test_pipeline_memory () =
  List.iter
    (fun d ->
      let r1 = reg d "R1" and r2 = reg d "R2" and r3 = reg d "R3" in
      let p =
        prog
          [
            block "entry"
              [
                Mir.assign r1 (Mir.R_const (bv d.Desc.d_word 100));
                Mir.assign r2 (Mir.R_mem r1);
                Mir.assign r2 (Mir.R_binop (Rtl.A_add, r2, r2));
                Mir.assign r3 (Mir.R_const (bv d.Desc.d_word 101));
                Mir.Store { addr = r3; src = r2 };
              ]
              Mir.Halt;
          ]
      in
      let sim, _ =
        run_mir d p ~setup:(fun sim ->
            Memory.poke (Sim.memory sim) 100 (bv d.Desc.d_word 21))
      in
      check_int
        (d.Desc.d_name ^ " store")
        42
        (Bitvec.to_int (Memory.peek (Sim.memory sim) 101)))
    Machines.all

let test_pipeline_switch () =
  (* 4-way switch on low 2 bits; dispatch on H1/HP3, chain on V11/B17 *)
  List.iter
    (fun d ->
      let r1 = reg d "R1" and r2 = reg d "R2" in
      let case l v =
        block l [ Mir.assign r2 (Mir.R_const (bv d.Desc.d_word v)) ] Mir.Halt
      in
      let p =
        prog
          [
            block "entry"
              [ Mir.assign r1 (Mir.R_const (bv d.Desc.d_word 6)) ]
              (Mir.Switch
                 { sel = r1; hi = 1; lo = 0; targets = [ "c0"; "c1"; "c2"; "c3" ] });
            case "c0" 100;
            case "c1" 101;
            case "c2" 102;
            case "c3" 103;
          ]
      in
      let sim, _ = run_mir d p in
      (* 6 = 0b110, low two bits = 2 *)
      check_int (d.Desc.d_name ^ " switch") 102
        (Bitvec.to_int (Sim.get_reg sim "R2")))
    Machines.all

let test_pipeline_call () =
  List.iter
    (fun d ->
      let r1 = reg d "R1" in
      let p =
        prog
          ~procs:
            [
              {
                Mir.p_name = "double";
                p_blocks =
                  [
                    block "double$entry"
                      [ Mir.assign r1 (Mir.R_binop (Rtl.A_add, r1, r1)) ]
                      Mir.Ret;
                  ];
              };
            ]
          [
            block "entry"
              [ Mir.assign r1 (Mir.R_const (bv d.Desc.d_word 5)) ]
              (Mir.Call { proc = "double"; cont = "next" });
            block "next" [] (Mir.Call { proc = "double"; cont = "out" });
            block "out" [] Mir.Halt;
          ]
      in
      let sim, _ = run_mir d p in
      check_int (d.Desc.d_name ^ " calls") 20
        (Bitvec.to_int (Sim.get_reg sim "R1")))
    Machines.all

let test_pipeline_unop_expansions () =
  (* inc/dec/neg/not everywhere, including V11 which synthesises them *)
  List.iter
    (fun d ->
      let r1 = reg d "R1" and r2 = reg d "R2" in
      let w = d.Desc.d_word in
      let p =
        prog
          [
            block "entry"
              [
                Mir.assign r1 (Mir.R_const (bv w 10));
                Mir.assign r1 (Mir.R_inc r1);  (* 11 *)
                Mir.assign r1 (Mir.R_dec r1);  (* 10 *)
                Mir.assign r2 (Mir.R_neg r1);  (* -10 *)
                Mir.assign r2 (Mir.R_binop (Rtl.A_add, r2, r1));  (* 0 *)
                Mir.assign r2 (Mir.R_not r2);  (* all ones *)
              ]
              Mir.Halt;
          ]
      in
      let sim, _ = run_mir d p in
      check_bool
        (d.Desc.d_name ^ " not(0) = ones")
        true
        (Bitvec.equal (Sim.get_reg sim "R2") (Bitvec.ones w)))
    Machines.all

let test_pipeline_shifts () =
  List.iter
    (fun d ->
      let r1 = reg d "R1" in
      let w = d.Desc.d_word in
      let p =
        prog
          [
            block "entry"
              [
                Mir.assign r1 (Mir.R_const (bv w 3));
                Mir.assign r1 (Mir.R_shift_imm (Rtl.A_shl, r1, 4));  (* 48 *)
                Mir.assign r1 (Mir.R_shift_imm (Rtl.A_shr, r1, 2));  (* 12 *)
              ]
              Mir.Halt;
          ]
      in
      let sim, _ = run_mir d p in
      check_int (d.Desc.d_name ^ " shifts") 12
        (Bitvec.to_int (Sim.get_reg sim "R1")))
    Machines.all

let test_pipeline_flag_branch_after_shift () =
  (* SIMPL's UF: shift right, branch on the shifted-out bit *)
  List.iter
    (fun d ->
      let r1 = reg d "R1" and r2 = reg d "R2" in
      let w = d.Desc.d_word in
      let p =
        prog
          [
            block "entry"
              [
                Mir.assign r1 (Mir.R_const (bv w 5));
                Mir.Assign
                  {
                    dst = r1;
                    rv = Mir.R_shift_imm (Rtl.A_shr, r1, 1);
                    set_flags = true;
                  };
              ]
              (Mir.If (Mir.Flag_set Rtl.U, "odd", "even"));
            block "odd"
              [ Mir.assign r2 (Mir.R_const (bv w 1)) ]
              Mir.Halt;
            block "even"
              [ Mir.assign r2 (Mir.R_const (bv w 0)) ]
              Mir.Halt;
          ]
      in
      let sim, _ = run_mir d p in
      check_int (d.Desc.d_name ^ " UF of 5>>1") 1
        (Bitvec.to_int (Sim.get_reg sim "R2")))
    Machines.all

(* -- mul/div expansion -------------------------------------------------------- *)

let vx i = Mir.Virt i

let test_mul_native_and_expanded () =
  List.iter
    (fun d ->
      let w = d.Desc.d_word in
      let p =
        {
          Mir.main =
            [
              block "entry"
                [
                  Mir.assign (vx 0) (Mir.R_const (bv w 7));
                  Mir.assign (vx 1) (Mir.R_const (bv w 13));
                  Mir.assign (vx 2) (Mir.R_binop (Rtl.A_mul, vx 0, vx 1));
                  Mir.assign (reg d "R1") (Mir.R_copy (vx 2));
                ]
                Mir.Halt;
            ];
          procs = [];
          vreg_names = [];
          next_vreg = 3;
        }
      in
      let sim, _ = run_mir d p in
      check_int (d.Desc.d_name ^ " 7*13") 91
        (Bitvec.to_int (Sim.get_reg sim "R1")))
    Machines.all

let test_div_expansion () =
  List.iter
    (fun d ->
      let w = d.Desc.d_word in
      let p =
        {
          Mir.main =
            [
              block "entry"
                [
                  Mir.assign (vx 0) (Mir.R_const (bv w 1000));
                  Mir.assign (vx 1) (Mir.R_const (bv w 31));
                  Mir.assign (vx 2) (Mir.R_div (vx 0, vx 1));
                  Mir.assign (vx 3) (Mir.R_rem (vx 0, vx 1));
                  Mir.assign (reg d "R1") (Mir.R_copy (vx 2));
                  Mir.assign (reg d "R2") (Mir.R_copy (vx 3));
                ]
                Mir.Halt;
            ];
          procs = [];
          vreg_names = [];
          next_vreg = 4;
        }
      in
      let sim, _ = run_mir d p in
      check_int (d.Desc.d_name ^ " 1000/31") 32
        (Bitvec.to_int (Sim.get_reg sim "R1"));
      check_int (d.Desc.d_name ^ " 1000 mod 31") 8
        (Bitvec.to_int (Sim.get_reg sim "R2")))
    [ Machines.h1; Machines.hp3; Machines.b17 ]

(* -- register allocation -------------------------------------------------------- *)

(* a program with [n] simultaneously-live virtual registers, summed at the
   end; correct under any allocation *)
let many_vars_prog d n =
  let w = d.Desc.d_word in
  let defs =
    List.init n (fun i -> Mir.assign (vx i) (Mir.R_const (bv w (i + 1))))
  in
  let sums =
    List.init n (fun i ->
        if i = 0 then Mir.assign (vx n) (Mir.R_copy (vx 0))
        else Mir.assign (vx n) (Mir.R_binop (Rtl.A_add, vx n, vx i)))
  in
  {
    Mir.main =
      [
        block "entry"
          (defs @ sums @ [ Mir.assign (reg d "R0") (Mir.R_copy (vx n)) ])
          Mir.Halt;
      ];
    procs = [];
    vreg_names = [];
    next_vreg = n + 1;
  }

(* The allocator tests pin -O0: their constant-seeded workloads are exactly
   what the optimizer folds away, and the point here is the allocator. *)
let alloc_opts = { Pipeline.default_options with Pipeline.opt_level = 0 }

let test_regalloc_no_spills () =
  let d = Machines.hp3 in
  let sim, m = run_mir d ~options:alloc_opts (many_vars_prog d 8) in
  check_int "sum correct" 36 (Bitvec.to_int (Sim.get_reg sim "R0"));
  match m.Pipeline.m_alloc with
  | Some s ->
      check_int "no spills with 8 vars" 0 s.Regalloc.spilled
  | None -> Alcotest.fail "allocator did not run"

let test_regalloc_spills_correct () =
  let d = Machines.hp3 in
  let n = 40 in
  let sim, m =
    run_mir d
      ~options:{ alloc_opts with Pipeline.pool_limit = Some 6 }
      (many_vars_prog d n)
  in
  check_int "sum correct despite spills" (n * (n + 1) / 2)
    (Bitvec.to_int (Sim.get_reg sim "R0"));
  match m.Pipeline.m_alloc with
  | Some s ->
      check_bool "spills occurred" true (s.Regalloc.spilled > 0);
      check_bool "loads counted" true (s.Regalloc.spill_loads > 0);
      check_bool "stores counted" true (s.Regalloc.spill_stores > 0)
  | None -> Alcotest.fail "allocator did not run"

let test_regalloc_priority_beats_first_fit () =
  (* a hot variable used many times plus cold ones: with a tiny pool the
     priority allocator must spill less traffic than first-fit *)
  let d = Machines.hp3 in
  let w = d.Desc.d_word in
  let hot = vx 0 in
  let n_cold = 8 in
  let cold i = vx (1 + i) in
  let defs =
    Mir.assign hot (Mir.R_const (bv w 1))
    :: List.init n_cold (fun i -> Mir.assign (cold i) (Mir.R_const (bv w i)))
  in
  let uses =
    List.concat
      (List.init 20 (fun _ -> [ Mir.assign hot (Mir.R_inc hot) ]))
    @ List.init n_cold (fun i ->
          Mir.assign (cold i) (Mir.R_inc (cold i)))
  in
  let p =
    {
      Mir.main =
        [
          block "entry"
            (defs @ uses
            @ [ Mir.assign (reg d "R0") (Mir.R_copy hot) ])
            Mir.Halt;
        ];
      procs = [];
      vreg_names = [];
      next_vreg = n_cold + 1;
    }
  in
  let traffic strategy =
    let _, m =
      run_mir d
        ~options:{ alloc_opts with Pipeline.strategy; pool_limit = Some 2 }
        p
    in
    match m.Pipeline.m_alloc with
    | Some s -> s.Regalloc.spill_loads + s.Regalloc.spill_stores
    | None -> Alcotest.fail "allocator did not run"
  in
  let ff = traffic Regalloc.First_fit in
  let pr = traffic Regalloc.Priority in
  check_bool
    (Printf.sprintf "priority (%d) <= first-fit (%d)" pr ff)
    true (pr <= ff)

(* -- poll points ------------------------------------------------------------------ *)

let test_pollpoints () =
  let d = Machines.hp3 in
  let p = sum_prog d 200 in
  let sim, _, _ =
    Pipeline.load ~options:{ Pipeline.default_options with poll = true } d p
  in
  Sim.schedule_interrupts sim [ 50; 150; 250 ];
  (match Sim.run sim with
  | Sim.Halted -> ()
  | Sim.Out_of_fuel -> Alcotest.fail "did not halt");
  check_int "all interrupts serviced" 3 (Sim.interrupts_serviced sim);
  check_int "result still correct" (200 * 201 / 2)
    (Bitvec.to_int (Sim.get_reg sim "R2"));
  (* without poll points, interrupts are never acknowledged *)
  let sim2, _, _ = Pipeline.load d p in
  Sim.schedule_interrupts sim2 [ 50 ];
  (match Sim.run sim2 with
  | Sim.Halted -> ()
  | Sim.Out_of_fuel -> Alcotest.fail "did not halt");
  check_int "no poll, no service" 0 (Sim.interrupts_serviced sim2)

(* -- trap-safe recompilation (survey §2.1.5) ------------------------------------ *)

(* The survey's incread program, as MIR: increment a register, use it as a
   memory address.  Under a page-fault restart the literal translation
   double-increments; the trap-safe recompilation does not. *)
let test_trapsafe_incread () =
  let d = Machines.hp3 in
  let r1 = reg d "R1" and r2 = reg d "R2" in
  let p =
    prog
      [
        block "entry"
          [
            Mir.assign r1 (Mir.R_inc r1);
            Mir.assign r2 (Mir.R_mem r1);
          ]
          Mir.Halt;
      ]
  in
  let run trap_safe =
    let sim, _, _ =
      Pipeline.load
        ~options:{ Pipeline.default_options with trap_safe }
        ~trap_mode:Sim.Restart d p
    in
    Sim.set_reg_int sim "R1" 299;
    Memory.mark_absent (Sim.memory sim) ~page:1;
    (match Sim.run sim with
    | Sim.Halted -> ()
    | Sim.Out_of_fuel -> Alcotest.fail "did not halt");
    (Bitvec.to_int (Sim.get_reg sim "R1"), Sim.traps_taken sim)
  in
  let buggy, t1 = run false in
  let safe, t2 = run true in
  check_int "one trap each" 1 t1;
  check_int "one trap each" 1 t2;
  check_int "literal translation double-increments" 301 buggy;
  check_int "trap-safe recompilation is idempotent" 300 safe

(* trap_safe must not change results in the absence of faults *)
let test_trapsafe_preserves_semantics () =
  List.iter
    (fun d ->
      let sim_plain, _ = run_mir d (sum_prog d 10) in
      let sim_safe, _ =
        run_mir d
          ~options:{ Pipeline.default_options with trap_safe = true }
          (sum_prog d 10)
      in
      check_int
        (d.Desc.d_name ^ " same result")
        (Bitvec.to_int (Sim.get_reg sim_plain "R2"))
        (Bitvec.to_int (Sim.get_reg sim_safe "R2")))
    Machines.all;
  (* and with memory traffic in the block *)
  let d = Machines.hp3 in
  let r1 = reg d "R1" and r2 = reg d "R2" and r3 = reg d "R3" in
  let p =
    prog
      [
        block "entry"
          [
            Mir.assign r1 (Mir.R_const (bv 16 100));
            Mir.assign r2 (Mir.R_mem r1);
            Mir.assign r2 (Mir.R_binop (Rtl.A_add, r2, r2));
            Mir.assign r3 (Mir.R_inc r1);
            Mir.Store { addr = r3; src = r2 };
            Mir.assign r1 (Mir.R_inc r3);
          ]
          Mir.Halt;
      ]
  in
  let run trap_safe =
    let sim, _ =
      run_mir d
        ~options:{ Pipeline.default_options with trap_safe }
        ~setup:(fun sim -> Memory.poke (Sim.memory sim) 100 (bv 16 21))
        p
    in
    ( Bitvec.to_int (Sim.get_reg sim "R1"),
      Bitvec.to_int (Memory.peek (Sim.memory sim) 101) )
  in
  Alcotest.(check (pair int int)) "trap-safe agrees" (run false) (run true)

(* -- compile metrics ---------------------------------------------------------------- *)

let test_metrics () =
  let d = Machines.hp3 in
  let _, _, m = Pipeline.compile d (sum_prog d 10) in
  check_bool "instructions > 0" true (m.Pipeline.m_instructions > 0);
  check_bool "ops >= instructions - branches" true (m.Pipeline.m_ops > 0);
  check_int "bits = words * width" (m.Pipeline.m_instructions * Encode.word_bits d)
    m.Pipeline.m_bits

let () =
  Alcotest.run "mir"
    [
      ( "dataflow",
        [
          Alcotest.test_case "levels" `Quick test_stmt_levels;
          Alcotest.test_case "single identity WAR" `Quick
            test_single_identity_war;
        ] );
      ( "compaction",
        [
          Alcotest.test_case "algorithm ordering" `Quick
            test_compaction_algorithms;
          Alcotest.test_case "dependences respected" `Quick
            test_compaction_respects_deps;
          Alcotest.test_case "vertical forced sequential" `Quick
            test_compaction_vertical_forced;
          Alcotest.test_case "fcfs matches naive reference" `Quick
            test_fcfs_matches_naive_reference;
          Alcotest.test_case "bb node accounting" `Quick
            test_optimal_budget_accounting;
          Alcotest.test_case "transport chaining" `Quick
            test_compaction_chaining;
          Alcotest.test_case "empty block" `Quick test_compaction_empty;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "sum on all machines" `Quick
            test_pipeline_sum_all_machines;
          Alcotest.test_case "memory" `Quick test_pipeline_memory;
          Alcotest.test_case "switch" `Quick test_pipeline_switch;
          Alcotest.test_case "call" `Quick test_pipeline_call;
          Alcotest.test_case "unary expansions" `Quick
            test_pipeline_unop_expansions;
          Alcotest.test_case "shifts" `Quick test_pipeline_shifts;
          Alcotest.test_case "UF branch" `Quick
            test_pipeline_flag_branch_after_shift;
        ] );
      ( "lowering",
        [
          Alcotest.test_case "multiply" `Quick test_mul_native_and_expanded;
          Alcotest.test_case "division" `Quick test_div_expansion;
        ] );
      ( "regalloc",
        [
          Alcotest.test_case "no spills" `Quick test_regalloc_no_spills;
          Alcotest.test_case "spills correct" `Quick
            test_regalloc_spills_correct;
          Alcotest.test_case "priority vs first-fit" `Quick
            test_regalloc_priority_beats_first_fit;
        ] );
      ("pollpoints", [ Alcotest.test_case "latency" `Quick test_pollpoints ]);
      ( "trapsafe",
        [
          Alcotest.test_case "incread repaired" `Quick test_trapsafe_incread;
          Alcotest.test_case "semantics preserved" `Quick
            test_trapsafe_preserves_semantics;
        ] );
      ("metrics", [ Alcotest.test_case "basic" `Quick test_metrics ]);
    ]
