(* An independent sanity checker for mslc --trace output, on purpose not
   using the toolkit's own parser: one JSON object per line, "seq"
   strictly increasing, "ph" one of B/E/C/i, and B/E balanced per tid.
   Silent and exit 0 when the trace is sane; a message and exit 1
   otherwise. *)

let fail lno msg =
  Printf.eprintf "line %d: %s\n" lno msg;
  exit 1

(* Position just past ["key":] in the line. *)
let after_key lno line key =
  let pat = Printf.sprintf "\"%s\":" key in
  let n = String.length line and pn = String.length pat in
  let rec find i =
    if i + pn > n then fail lno ("missing field " ^ key)
    else if String.sub line i pn = pat then i + pn
    else find (i + 1)
  in
  find 0

let int_field lno line key =
  let i = after_key lno line key in
  let j = ref i in
  while
    !j < String.length line
    && (match line.[!j] with '0' .. '9' | '-' -> true | _ -> false)
  do
    incr j
  done;
  if !j = i then fail lno (key ^ " is not an integer");
  int_of_string (String.sub line i (!j - i))

(* The one-character string value of ["ph":"X"]. *)
let ph_field lno line =
  let i = after_key lno line "ph" in
  if i + 2 >= String.length line || line.[i] <> '"' || line.[i + 2] <> '"'
  then fail lno "ph is not a one-character string";
  line.[i + 1]

let () =
  if Array.length Sys.argv < 2 then fail 0 "usage: check_trace FILE";
  let ic = open_in Sys.argv.(1) in
  let depth = Hashtbl.create 8 in
  let last_seq = ref 0 and lno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lno;
       if line <> "" then begin
         if line.[0] <> '{' || line.[String.length line - 1] <> '}' then
           fail !lno "not a JSON object";
         let seq = int_field !lno line "seq" in
         if seq <= !last_seq then fail !lno "seq not strictly increasing";
         last_seq := seq;
         let tid = int_field !lno line "tid" in
         let d = try Hashtbl.find depth tid with Not_found -> 0 in
         match ph_field !lno line with
         | 'B' -> Hashtbl.replace depth tid (d + 1)
         | 'E' ->
             if d = 0 then fail !lno "span end without a begin";
             Hashtbl.replace depth tid (d - 1)
         | 'C' | 'i' -> ()
         | c -> fail !lno (Printf.sprintf "unknown phase %C" c)
       end
     done
   with End_of_file -> ());
  close_in ic;
  Hashtbl.iter
    (fun tid d ->
      if d <> 0 then fail !lno (Printf.sprintf "tid %d: %d unclosed spans" tid d))
    depth;
  if !last_seq = 0 then fail 0 "empty trace"
