(* The .mdesc machine-description format.

   Three claims are held here.  First, the byte-identity regression: the
   shipped machines/*.mdesc files, elaborated through Mdesc, encode
   every examples/* program at -O0 and -O1 to the exact control-store
   bytes the original hand-written OCaml descriptions produced (the
   golden digests below were generated against those modules before they
   were deleted).  Second, elaboration is a faithful round trip:
   [to_source] then [parse] reproduces a description exactly.  Third,
   malformed input is answered with located diagnostics — the golden
   corpus asserts the phase, line and message of each rejection, and the
   new Desc.validate invariants each have a direct unit test. *)

open Msl_machine
module Core = Msl_core
module Toolkit = Core.Toolkit
module Diag = Msl_util.Diag
module Pipeline = Msl_mir.Pipeline

let examples_dir =
  if Sys.file_exists "../examples" then "../examples" else "examples"

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* -- byte-identical encodings over the example corpus -------------------- *)

let lang_of_file f =
  if Filename.check_suffix f ".yll" then Some Toolkit.Yalll
  else if Filename.check_suffix f ".simpl" then Some Toolkit.Simpl
  else if Filename.check_suffix f ".empl" then Some Toolkit.Empl
  else None

let encoding_digest d insts =
  let words = Encode.encode_program d insts in
  Digest.to_hex
    (Digest.string (String.concat "\n" (List.map Encode.word_to_hex words)))

(* (example, machine, opt level, MD5 of the hex control words) — captured
   from the hand-written h1.ml/hp3.ml/v11.ml/b17.ml before their
   deletion.  A change here means the .mdesc data no longer encodes what
   the original modules did. *)
let goldens =
  [
    ("cascade.simpl", "HP3", 0, "99fb6b723876058c59dddbd323c5ad55");
    ("cascade.simpl", "HP3", 1, "9ada2746decfae4fe94f0e30c2a2001c");
    ("cascade.simpl", "H1", 0, "eec9d368a0eef5cf4f1f85e0e9a7b429");
    ("cascade.simpl", "H1", 1, "01f26199d0a61efafc3ed2ad3499e4ac");
    ("cascade.simpl", "B17", 0, "80c9b4f53c9cf67d05ee78c1385edf5b");
    ("cascade.simpl", "B17", 1, "e2c6061c46c278345f1c6333d0aa16ef");
    ("fold.empl", "HP3", 0, "8e82970b04ab4882c366746529b29994");
    ("fold.empl", "HP3", 1, "a167f00ff90c127b60273fe035e9a503");
    ("fold.empl", "B17", 0, "afc6ef4506304b6362d114d180511ceb");
    ("fold.empl", "B17", 1, "c64273297afc1ad82ffd83fa2f820c6f");
    ("gcd.yll", "HP3", 0, "cbeec0aa0332acba44e636f79d891a87");
    ("gcd.yll", "HP3", 1, "7cc7ac1efea335b80597664a57fcaafc");
    ("gcd.yll", "V11", 0, "53530a6ca28060d9c7bda67ade49895e");
    ("gcd.yll", "V11", 1, "5f837ca50ea0771005e7c699929a4525");
    ("gcd.yll", "B17", 0, "652f69400245221255ebb6b86240625d");
    ("gcd.yll", "B17", 1, "fd621c1a5725451f05a7acf0370d988f");
    ("mpy.simpl", "HP3", 0, "0b52be29e8b42fa0460e5f23aaec048d");
    ("mpy.simpl", "HP3", 1, "0b52be29e8b42fa0460e5f23aaec048d");
    ("mpy.simpl", "H1", 0, "ddbf15303badb4db20118b9b93b30b2a");
    ("mpy.simpl", "H1", 1, "ddbf15303badb4db20118b9b93b30b2a");
    ("mpy.simpl", "B17", 0, "fbc6025906f46fc1be7da110529efcb0");
    ("mpy.simpl", "B17", 1, "fbc6025906f46fc1be7da110529efcb0");
    ("shifts.yll", "HP3", 0, "5d7a6ef13d1d68c50e9f0c110a3f7a8e");
    ("shifts.yll", "HP3", 1, "d0ebdd614aba630cfef5a61c8e926fd0");
    ("shifts.yll", "V11", 0, "86f3de34aaac4bc3d2f27e6a7c00d153");
    ("shifts.yll", "V11", 1, "b0949ba5e56b4eff3094965f0e015efb");
    ("shifts.yll", "B17", 0, "b8378f01cc62245a7b656ffa8b8ce001");
    ("shifts.yll", "B17", 1, "ff5d064191575acf2dbca3d316f4eade");
    ("sum_loop.yll", "HP3", 0, "4c7a02308bf905fde164f22d5019b92f");
    ("sum_loop.yll", "HP3", 1, "e230026afa1dfbdb22e0ba15c145203f");
    ("sum_loop.yll", "V11", 0, "9949e36e431f8139eeb27e0b17c0b8d3");
    ("sum_loop.yll", "V11", 1, "9ce7f55c5fe29bb99cbc8dca9383909c");
    ("sum_loop.yll", "B17", 0, "a35f698834612540c9bb24840007fdb6");
    ("sum_loop.yll", "B17", 1, "c50575efd3540f98578428d1a84e2011");
    ("sum_while.simpl", "HP3", 0, "527b4dde805e4a8e1303b059aba3edb2");
    ("sum_while.simpl", "HP3", 1, "527b4dde805e4a8e1303b059aba3edb2");
    ("sum_while.simpl", "H1", 0, "fc85886735bbb3debf88ef2a41e1531e");
    ("sum_while.simpl", "H1", 1, "fc85886735bbb3debf88ef2a41e1531e");
    ("sum_while.simpl", "B17", 0, "be4a3e1b2339de9b2fed1b81b77a23c2");
    ("sum_while.simpl", "B17", 1, "be4a3e1b2339de9b2fed1b81b77a23c2");
  ]

let test_byte_identity () =
  List.iter
    (fun (file, mname, opt, expected) ->
      let lang =
        match lang_of_file file with
        | Some l -> l
        | None -> Alcotest.fail ("unknown language for " ^ file)
      in
      let src = read_file (Filename.concat examples_dir file) in
      let options =
        { Pipeline.default_options with Pipeline.opt_level = opt }
      in
      let d = Machines.get mname in
      let c = Toolkit.compile ~options lang d src in
      let got = encoding_digest d c.Toolkit.c_insts in
      Alcotest.(check string)
        (Printf.sprintf "%s on %s -O%d" file mname opt)
        expected got)
    goldens

let test_goldens_cover_corpus () =
  (* every example x target machine x opt level has a golden row, so a
     new example cannot silently skip the regression *)
  let machines_of = function
    | Toolkit.Yalll -> [ "HP3"; "V11"; "B17" ]
    | Toolkit.Simpl -> [ "HP3"; "H1"; "B17" ]
    | Toolkit.Empl -> [ "HP3"; "B17" ]
    | Toolkit.Sstar -> []
  in
  Sys.readdir examples_dir |> Array.to_list |> List.sort compare
  |> List.iter (fun file ->
         match lang_of_file file with
         | None -> ()
         | Some lang ->
             List.iter
               (fun m ->
                 List.iter
                   (fun opt ->
                     if
                       not
                         (List.exists
                            (fun (f, m', o, _) -> f = file && m' = m && o = opt)
                            goldens)
                     then
                       Alcotest.fail
                         (Printf.sprintf "no golden for %s on %s -O%d" file m
                            opt))
                   [ 0; 1 ])
               (machines_of lang))

(* -- round trip ---------------------------------------------------------- *)

let test_round_trip () =
  List.iter
    (fun d ->
      let src = Mdesc.to_source d in
      let d' = Mdesc.parse ~file:(d.Desc.d_name ^ ".mdesc") src in
      Alcotest.(check string)
        (d.Desc.d_name ^ " round trip")
        src (Mdesc.to_source d'))
    Machines.all

let test_inventory () =
  let pin name words regs phases =
    let d = Machines.get name in
    Alcotest.(check int) (name ^ " word bits") words (Desc.word_bits d);
    Alcotest.(check int) (name ^ " registers") regs (Array.length d.Desc.d_regs);
    Alcotest.(check int) (name ^ " phases") phases d.Desc.d_phases
  in
  pin "H1" 167 19 3;
  pin "HP3" 170 32 2;
  pin "V11" 61 16 1;
  pin "B17" 59 32 1

(* -- the malformed-input golden corpus ----------------------------------- *)

(* A minimal valid machine the malformed cases are variations of. *)
let base_src =
  "machine T {\n\
  \  word 16\n\
  \  addr 8\n\
  \  phases 2\n\
  \  store 256\n\
  \  caps [flag]\n\
  \  units [alu]\n\
  \  field seq 3 0\n\
  \  field cond 4 3\n\
  \  field addr 8 7\n\
  \  field breg 4 15\n\
  \  field op 4 19\n\
  \  field a 4 23\n\
  \  field b 4 27\n\
  \  field d 4 31\n\
  \  field imm 16 35\n\
  \  reg R0 16 [gpr alloc]\n\
  \  reg R1 16 [gpr alloc]\n\
  \  reg AT 16 [gpr at]\n\
  \  tmpl add {\n\
  \    sem binop add\n\
  \    phase 0\n\
  \    units [alu]\n\
  \    op dst reg gpr write\n\
  \    op a reg gpr read\n\
  \    op b reg gpr read\n\
  \    result operands\n\
  \    enc op 1\n\
  \    enc d @dst\n\
  \    enc a @a\n\
  \    enc b @b\n\
  \    act arithq add @dst, @a, @b\n\
  \  }\n\
  \  tmpl nop { sem nop phase 0 units [] result none }\n\
  }\n"

let test_base_is_valid () =
  let d = Mdesc.parse ~file:"base.mdesc" base_src in
  Alcotest.(check string) "name" "T" d.Desc.d_name;
  Alcotest.(check int) "templates" 2 (Array.length d.Desc.d_templates)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* [with_line n s] is [base_src] with 1-based line [n] replaced by [s];
   every malformed case below is one such single-line variation, so the
   expected diagnostic line is the edited line itself. *)
let with_line n s =
  base_src |> String.split_on_char '\n'
  |> List.mapi (fun i line -> if i + 1 = n then s else line)
  |> String.concat "\n"

(* (name, source, phase, 1-based line, message fragment) *)
let malformed =
  [
    ("stray-character", with_line 2 "  word 16 %", Diag.Lexing, 2,
     "stray character");
    ("unterminated-string", with_line 5 "  note \"oops", Diag.Lexing, 5,
     "string literal");
    ("bad-escape", with_line 5 "  note \"a\\q\"", Diag.Lexing, 5,
     "unknown escape");
    ("missing-brace", with_line 35 "", Diag.Parsing, 36, "expected");
    ("not-a-machine", "widget T { }", Diag.Parsing, 1, "expected 'machine'");
    ("trailing-tokens", base_src ^ "machine U { }", Diag.Parsing, 36,
     "expected end of input");
    ("word-out-of-range", with_line 2 "  word 96", Diag.Semantic, 2,
     "outside 1..64");
    ("phases-out-of-range", with_line 4 "  phases 0", Diag.Semantic, 4,
     "outside 1..16");
    ("duplicate-scalar", with_line 3 "  word 16", Diag.Semantic, 3,
     "duplicate 'word' declaration");
    ("unknown-cap", with_line 6 "  caps [banana]", Diag.Semantic, 6,
     "unknown condition capability");
    ("duplicate-field-ci", with_line 12 "  field SEQ 4 19", Diag.Semantic, 12,
     "duplicate field name");
    ("field-overlap", with_line 12 "  field op 4 2", Diag.Semantic, 12,
     "overlaps field");
    ("field-width-zero", with_line 12 "  field op 0 19", Diag.Semantic, 12,
     "outside 1..62");
    ("duplicate-reg-ci", with_line 18 "  reg r0 16 [gpr]", Diag.Semantic, 18,
     "duplicate register name");
    ("empty-class-list", with_line 18 "  reg R1 16 []", Diag.Semantic, 18,
     "empty class list");
    ("macro-as-class", with_line 18 "  reg R1 16 [macro]", Diag.Semantic, 18,
     "'macro' is not a register class");
    ("unknown-sem", with_line 21 "    sem binop frobnicate", Diag.Semantic, 21,
     "unknown ALU operator");
    ("template-phase-range", with_line 22 "    phase 7", Diag.Semantic, 22,
     "outside 0..1");
    ("unknown-unit", with_line 23 "    units [fpu]", Diag.Semantic, 23,
     "unknown unit");
    ("no-reg-in-class", with_line 24 "    op dst reg vec write",
     Diag.Semantic, 24, "no register carries class");
    ("duplicate-operand", with_line 25 "    op dst reg gpr read",
     Diag.Semantic, 25, "duplicate operand name");
    ("unknown-enc-field", with_line 28 "    enc opcode 1", Diag.Semantic, 28,
     "unknown field");
    ("enc-value-overflow", with_line 28 "    enc op 99", Diag.Semantic, 28,
     "does not fit field");
    ("unknown-operand-ref", with_line 29 "    enc d @dest", Diag.Semantic, 29,
     "unknown operand");
    ("write-to-read-only", with_line 32 "    act arithq add @a, @dst, @b",
     Diag.Semantic, 20, "writes read-only operand");
    ("unknown-action", with_line 32 "    act frob add @dst, @a, @b",
     Diag.Parsing, 32, "unknown action kind");
    ("slice-bounds", with_line 32 "    act assign @dst, slice(@a, 2, 9)",
     Diag.Semantic, 32, "slice low bit");
    ("const-too-wide", with_line 32 "    act assign @dst, 9:2", Diag.Semantic,
     32, "does not fit");
    ("unknown-flag", with_line 32 "    act setflag Q, @a", Diag.Semantic, 32,
     "unknown flag");
    ("duplicate-template-ci", with_line 34
       "  tmpl ADD { sem nop phase 0 units [] result none }",
     Diag.Semantic, 34, "duplicate template name");
    ("missing-sem", with_line 34 "  tmpl nop { phase 0 units [] result none }",
     Diag.Semantic, 34, "missing 'sem'");
    ("no-registers",
     "machine T { word 16 addr 8 phases 1 store 64 units []\n\
     \  field seq 3 0\n\
      tmpl nop { sem nop phase 0 units [] result none } }",
     Diag.Semantic, 1, "declares no registers");
  ]

let test_malformed_corpus () =
  List.iter
    (fun (name, src, phase, line, frag) ->
      match Mdesc.parse ~file:"t.mdesc" src with
      | _ -> Alcotest.fail (name ^ ": malformed input was accepted")
      | exception Diag.Error d ->
          Alcotest.(check string)
            (name ^ ": phase")
            (Diag.phase_name phase)
            (Diag.phase_name d.Diag.phase);
          Alcotest.(check int)
            (name ^ ": line")
            line d.Diag.loc.Msl_util.Loc.start_pos.Msl_util.Loc.line;
          if not (contains d.Diag.message frag) then
            Alcotest.fail
              (Printf.sprintf "%s: diagnostic %S does not mention %S" name
                 d.Diag.message frag))
    malformed

(* -- Desc.validate invariants, hit directly ------------------------------ *)

let mk ?(regs = [ Desc.mkreg ~classes:[ "gpr" ] 0 "R0" 16 ])
    ?(fields = [ { Desc.f_name = "op"; f_width = 4; f_lo = 0 } ])
    ?(templates = []) ?(units = []) () =
  Desc.make ~name:"T" ~word:16 ~addr:8 ~phases:1 ~regs ~units ~fields
    ~templates ~cond_caps:[] ~mem_extra_cycles:0 ~store_words:64
    ~vertical:false ~scratch_base:32 ~note:"" ()

let rejected name frag f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": invalid description was accepted")
  | exception Invalid_argument msg ->
      if not (contains msg frag) then
        Alcotest.fail
          (Printf.sprintf "%s: error %S does not mention %S" name msg frag)

let nop_tmpl ?(fields = []) ?(actions = []) name =
  {
    Desc.t_name = name;
    t_sem = Desc.S_nop;
    t_operands = [||];
    t_result = Desc.R_none;
    t_phase = 0;
    t_units = [];
    t_fields = fields;
    t_actions = actions;
    t_extra_cycles = 0;
  }

let test_validate_invariants () =
  ignore (mk ());
  rejected "duplicate reg names (case-insensitive)" "duplicate register name"
    (fun () ->
      mk
        ~regs:
          [
            Desc.mkreg ~classes:[ "gpr" ] 0 "R0" 16;
            Desc.mkreg ~classes:[ "gpr" ] 1 "r0" 16;
          ]
        ());
  rejected "duplicate field names (case-insensitive)" "duplicate field name"
    (fun () ->
      mk
        ~fields:
          [
            { Desc.f_name = "op"; f_width = 4; f_lo = 0 };
            { Desc.f_name = "OP"; f_width = 4; f_lo = 4 };
          ]
        ());
  rejected "duplicate template names (case-insensitive)"
    "duplicate template name" (fun () ->
      mk ~templates:[ nop_tmpl "nop"; nop_tmpl "NOP" ] ());
  rejected "duplicate unit names (case-insensitive)" "duplicate unit name"
    (fun () -> mk ~units:[ "alu"; "ALU" ] ());
  rejected "overlapping fields" "overlap" (fun () ->
      mk
        ~fields:
          [
            { Desc.f_name = "op"; f_width = 4; f_lo = 0 };
            { Desc.f_name = "a"; f_width = 4; f_lo = 3 };
          ]
        ());
  rejected "field at negative offset" "negative offset" (fun () ->
      mk ~fields:[ { Desc.f_name = "op"; f_width = 4; f_lo = -1 } ] ());
  rejected "field width out of range" "width" (fun () ->
      mk ~fields:[ { Desc.f_name = "op"; f_width = 63; f_lo = 0 } ] ());
  rejected "constant too wide for field" "does not fit field" (fun () ->
      mk
        ~templates:
          [
            nop_tmpl "nop"
              ~fields:[ { Desc.fs_field = "op"; fs_value = Desc.Fv_const 16 } ];
          ]
        ());
  rejected "unresolved field reference" "unknown field" (fun () ->
      mk
        ~templates:
          [
            nop_tmpl "nop"
              ~fields:[ { Desc.fs_field = "zap"; fs_value = Desc.Fv_const 0 } ];
          ]
        ());
  rejected "unresolved operand reference" "operand" (fun () ->
      mk
        ~templates:
          [
            nop_tmpl "nop"
              ~fields:[ { Desc.fs_field = "op"; fs_value = Desc.Fv_opnd 2 } ];
          ]
        ());
  rejected "empty register class behind an operand" "class" (fun () ->
      mk
        ~templates:
          [
            {
              (nop_tmpl "mov") with
              Desc.t_sem = Desc.S_move;
              t_operands = [| Desc.opwrite ~name:"dst" "vec" |];
              t_result = Desc.R_operands;
            };
          ]
        ())

(* -- registry and file loading ------------------------------------------- *)

let test_unknown_machine () =
  match Machines.get "Z80" with
  | _ -> Alcotest.fail "unknown machine was accepted"
  | exception Diag.Error d ->
      Alcotest.(check string) "phase"
        (Diag.phase_name Diag.Semantic)
        (Diag.phase_name d.Diag.phase);
      List.iter
        (fun frag ->
          if not (contains d.Diag.message frag) then
            Alcotest.fail
              (Printf.sprintf "diagnostic %S does not mention %S"
                 d.Diag.message frag))
        [ "unknown machine"; "Z80"; "H1"; "HP3"; "V11"; "B17" ]

let test_find_case_insensitive () =
  (match Machines.find "hp3" with
  | Some d -> Alcotest.(check string) "find hp3" "HP3" d.Desc.d_name
  | None -> Alcotest.fail "find hp3 returned None");
  Alcotest.(check bool) "find nope" true (Machines.find "nope" = None)

let test_load_file () =
  let tmp = Filename.temp_file "mdesc_test" ".mdesc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let oc = open_out_bin tmp in
      output_string oc base_src;
      close_out oc;
      let d = Machines.load_file tmp in
      Alcotest.(check string) "loaded name" "T" d.Desc.d_name);
  (* missing file: a located diagnostic, not a Sys_error *)
  (match Machines.load_file "/nonexistent/no.mdesc" with
  | _ -> Alcotest.fail "missing file was accepted"
  | exception Diag.Error d ->
      if not (contains d.Diag.message "cannot read machine description") then
        Alcotest.fail ("unexpected message: " ^ d.Diag.message));
  (* invalid contents: the parser's diagnostic carries the path *)
  let tmp2 = Filename.temp_file "mdesc_test" ".mdesc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp2)
    (fun () ->
      let oc = open_out_bin tmp2 in
      output_string oc "machine Bad {";
      close_out oc;
      match Machines.load_file tmp2 with
      | _ -> Alcotest.fail "truncated file was accepted"
      | exception Diag.Error d ->
          Alcotest.(check string) "file in loc" tmp2 d.Diag.loc.Msl_util.Loc.file)

let () =
  Alcotest.run "mdesc"
    [
      ( "byte-identity",
        [
          Alcotest.test_case "examples encode to golden bytes" `Slow
            test_byte_identity;
          Alcotest.test_case "goldens cover the corpus" `Quick
            test_goldens_cover_corpus;
        ] );
      ( "round-trip",
        [
          Alcotest.test_case "to_source/parse fixpoint" `Quick test_round_trip;
          Alcotest.test_case "machine inventory" `Quick test_inventory;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "base source is valid" `Quick test_base_is_valid;
          Alcotest.test_case "malformed corpus" `Quick test_malformed_corpus;
          Alcotest.test_case "Desc.validate invariants" `Quick
            test_validate_invariants;
        ] );
      ( "registry",
        [
          Alcotest.test_case "unknown machine" `Quick test_unknown_machine;
          Alcotest.test_case "find is case-insensitive" `Quick
            test_find_case_insensitive;
          Alcotest.test_case "load_file" `Quick test_load_file;
        ] );
    ]
