(* Tests for the translation validator: the Symexec term and decision
   layers (normalizer soundness against concrete simulation, exhaustive
   proof, sampled refutation, budget exhaustion) and the Tv validation
   passes (honest blocks validate; every injected miscompile kind is
   refuted and its witness store replays to divergent architectural
   state through the interpreter). *)

open Msl_bitvec
open Msl_machine
module Core = Msl_core
module Tv = Msl_mir.Tv
module Select = Msl_mir.Select
module Compaction = Msl_mir.Compaction

let check_bool = Alcotest.(check bool)
let hp3 = Machines.hp3

(* A concrete environment over a seeded assignment; memory starts zero,
   matching a freshly created simulator. *)
let env_of a =
  {
    Symexec.e_var =
      (fun n ->
        match List.assoc_opt n a with
        | Some v -> v
        | None -> Alcotest.failf "unbound symbolic variable %s" n);
    e_mem = (fun _ -> 0L);
  }

(* -- the decision layer -------------------------------------------------- *)

(* x - y and x + (lnot y) + 1 build different terms; 16 live bits fit the
   default exhaustive budget, so the equality is proved, not sampled. *)
let test_decide_proved () =
  let ctx = Symexec.create_ctx () in
  let x = Symexec.var ctx "x" 8 and y = Symexec.var ctx "y" 8 in
  let lhs = Symexec.sub ctx x y in
  let rhs =
    Symexec.add ctx
      (Symexec.add ctx x (Symexec.lognot ctx y))
      (Symexec.const_int ctx ~width:8 1)
  in
  check_bool "terms differ structurally" true (lhs.Symexec.id <> rhs.Symexec.id);
  match Symexec.decide [ (lhs, rhs) ] with
  | Symexec.Proved -> ()
  | Symexec.Refuted _ -> Alcotest.fail "refuted a true equality"
  | Symexec.Unknown -> Alcotest.fail "budget should cover 16 live bits"

(* The same goal under a starved budget (no enumeration, no samples) is
   the honest answer: Unknown. *)
let test_decide_unknown () =
  let ctx = Symexec.create_ctx () in
  let x = Symexec.var ctx "x" 8 and y = Symexec.var ctx "y" 8 in
  let lhs = Symexec.sub ctx x y in
  let rhs =
    Symexec.add ctx
      (Symexec.add ctx x (Symexec.lognot ctx y))
      (Symexec.const_int ctx ~width:8 1)
  in
  match Symexec.decide ~budget_bits:0 ~samples:0 [ (lhs, rhs) ] with
  | Symexec.Unknown -> ()
  | _ -> Alcotest.fail "a starved budget must answer Unknown"

(* x + 1 vs x + 2: refuted, and the counterexample actually separates the
   two terms under concrete evaluation. *)
let test_decide_refuted () =
  let ctx = Symexec.create_ctx () in
  let x = Symexec.var ctx "x" 8 in
  let lhs = Symexec.add ctx x (Symexec.const_int ctx ~width:8 1) in
  let rhs = Symexec.add ctx x (Symexec.const_int ctx ~width:8 2) in
  match Symexec.decide [ (lhs, rhs) ] with
  | Symexec.Refuted cx ->
      let env = env_of cx in
      check_bool "counterexample separates the terms" false
        (Symexec.equal_under env lhs rhs)
  | _ -> Alcotest.fail "expected a refutation"

(* -- normalizer soundness: symbolic execution vs the interpreter --------- *)

(* Compact a generated block, execute the words symbolically, then check
   that every register and flag term evaluates — under seeded concrete
   stores — to exactly what the interpreter computes.  This holds every
   smart-constructor rewrite (constant folding, ALU lowering, flag
   reduction, slice/zext normalization) to Sim's concrete semantics. *)
let block_words ?(p_dep = 40) d ~seed ~n =
  let ops = Core.Workloads.compaction_block d ~seed ~n ~p_dep in
  let r =
    Compaction.compact ~chain:true ~algo:Compaction.Critical_path d ops
  in
  List.map (fun g -> { Inst.ops = g; next = Inst.Next }) r.Compaction.groups
  @ [ { Inst.ops = []; next = Inst.Halt } ]

let test_symexec_matches_sim () =
  List.iter
    (fun seed ->
      let words = block_words hp3 ~seed ~n:10 in
      let ctx = Symexec.create_ctx () in
      let store = Symexec.init_store ctx hp3 in
      List.iter
        (fun (w : Inst.t) -> Symexec.exec_word ctx hp3 store w.Inst.ops)
        words;
      List.iter
        (fun a ->
          let env = env_of a in
          let sim = Sim.create hp3 in
          Sim.load_store sim words;
          Tv.apply_assignment hp3 sim a;
          (match Sim.run ~fuel:256 sim with
          | Sim.Halted -> ()
          | Sim.Out_of_fuel -> Alcotest.fail "block did not halt");
          Array.iteri
            (fun i (r : Desc.reg) ->
              let want = Sim.get_reg sim r.Desc.r_name in
              let got = Symexec.eval env store.Symexec.st_regs.(i) in
              if not (Bitvec.equal want got) then
                Alcotest.failf "seed %d, %s: sim %s vs symexec %s" seed
                  r.Desc.r_name (Bitvec.to_string want) (Bitvec.to_string got))
            hp3.Desc.d_regs;
          Array.iteri
            (fun i t ->
              let fl = Symexec.flag_of_index i in
              let want = Sim.get_flag sim fl in
              let got = not (Bitvec.is_zero (Symexec.eval env t)) in
              if want <> got then
                Alcotest.failf "seed %d, flag %s: sim %b vs symexec %b" seed
                  (Rtl.flag_name fl) want got)
            store.Symexec.st_flags)
        (Tv.seeded_assignments hp3 ~seed ~n:3))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* -- hash-consing normalizations ----------------------------------------- *)

let test_normalizer_identities () =
  let ctx = Symexec.create_ctx () in
  let x = Symexec.var ctx "x" 8 and y = Symexec.var ctx "y" 8 in
  check_bool "add commutes to one term" true
    ((Symexec.add ctx x y).Symexec.id = (Symexec.add ctx y x).Symexec.id);
  check_bool "x - x folds to zero" true
    (match (Symexec.sub ctx x x).Symexec.node with
    | Symexec.Const v -> Bitvec.is_zero v
    | _ -> false);
  check_bool "double negation cancels" true
    ((Symexec.lognot ctx (Symexec.lognot ctx x)).Symexec.id = x.Symexec.id);
  check_bool "slice of zext re-canonicalizes" true
    ((Symexec.slice ctx (Symexec.zext ctx 16 x) ~hi:7 ~lo:0).Symexec.id
    = x.Symexec.id)

(* -- block-level validation: the layered verdicts ------------------------ *)

let to_words insts =
  List.map
    (fun (w : Inst.t) ->
      ( w.Inst.ops,
        match w.Inst.next with
        | Inst.Halt -> Select.L_halt
        | _ -> Select.L_next ))
    insts

let parse_words src = to_words (Masm.parse_program hp3 src)

(* R1 + R1 vs R1 shl 1: equal on all 2^16 inputs but structurally
   different (shifts stay opaque), so the verdict walks the layers:
   exhaustive proof under the default budget, Unknown when starved,
   dynamic agreement when the fallback is allowed. *)
let test_validate_words_layers () =
  let reference = parse_words "[ add R0, R1, R1 ] -> halt\n" in
  let shl1 = parse_words "[ shl R0, R1, #1 ] -> halt\n" in
  (match Tv.validate_words hp3 ~reference ~candidate:shl1 with
  | Tv.Validated -> ()
  | _ -> Alcotest.fail "expected an exhaustive proof");
  let starved =
    { Tv.tv_budget_bits = 0; tv_samples = 0; tv_seed = 0; tv_dynamic = false }
  in
  (match Tv.validate_words ~config:starved hp3 ~reference ~candidate:shl1 with
  | Tv.Unknown -> ()
  | _ -> Alcotest.fail "a starved budget must answer Unknown");
  let dynamic = { starved with Tv.tv_dynamic = true } in
  (match Tv.validate_words ~config:dynamic hp3 ~reference ~candidate:shl1 with
  | Tv.Validated_dynamic -> ()
  | _ -> Alcotest.fail "the dynamic fallback should agree");
  (* R1 shl 2 computes something else: refuted with a counterexample *)
  let shl2 = parse_words "[ shl R0, R1, #2 ] -> halt\n" in
  match Tv.validate_words hp3 ~reference ~candidate:shl2 with
  | Tv.Refuted (Some _) -> ()
  | _ -> Alcotest.fail "expected a counterexample refutation"

let test_validate_honest_block () =
  List.iter
    (fun seed ->
      let ops = Core.Workloads.compaction_block hp3 ~seed ~n:12 ~p_dep:50 in
      let reference =
        List.map (fun o -> ([ o ], Select.L_next)) ops @ [ ([], Select.L_halt) ]
      in
      let candidate = to_words (block_words ~p_dep:50 hp3 ~seed ~n:12) in
      (* same n/p_dep: candidate is the compaction of the same op list *)
      match Tv.validate_words hp3 ~reference ~candidate with
      | Tv.Validated -> ()
      | Tv.Validated_dynamic -> Alcotest.fail "honest block needed the fallback"
      | Tv.Refuted _ -> Alcotest.failf "honest compaction refuted (seed %d)" seed
      | Tv.Unknown -> Alcotest.failf "honest compaction unknown (seed %d)" seed)
    [ 1; 2; 3; 4; 5 ]

(* Different p_dep: a genuinely different op list must not validate. *)
let test_validate_different_blocks () =
  let ops = Core.Workloads.compaction_block hp3 ~seed:1 ~n:12 ~p_dep:50 in
  let reference =
    List.map (fun o -> ([ o ], Select.L_next)) ops @ [ ([], Select.L_halt) ]
  in
  let candidate = to_words (block_words hp3 ~seed:2 ~n:12) in
  match Tv.validate_words hp3 ~reference ~candidate with
  | Tv.Refuted _ -> ()
  | Tv.Validated | Tv.Validated_dynamic ->
      Alcotest.fail "validated two different blocks"
  | Tv.Unknown -> Alcotest.fail "expected a refutation, got Unknown"

(* -- program-level validation: miscompiles refuted and replayed ---------- *)

let read_example name =
  let dir = if Sys.file_exists "../examples" then "../examples" else "examples" in
  let ic = open_in_bin (Filename.concat dir name) in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* The probe's observation, replayed: one input store through both
   programs on the interpreter, compared on halt status + architectural
   digest. *)
let replay_diverges (d : Desc.t) witness reference mutant =
  let run insts =
    try
      let sim = Sim.create ~trap_mode:Sim.Fault_is_error d in
      Sim.load_store sim insts;
      Tv.apply_assignment d sim witness;
      let status =
        match Sim.run ~fuel:4096 sim with
        | Sim.Halted -> "halted\n"
        | Sim.Out_of_fuel -> "fuel\n"
      in
      status ^ Tv.arch_digest d sim
    with Msl_util.Diag.Error di -> "fault:" ^ di.Msl_util.Diag.message
  in
  run reference <> run mutant

let test_miscompiles_refuted () =
  let d = hp3 in
  let c = Core.Toolkit.compile Core.Toolkit.Yalll d (read_example "gcd.yll") in
  let insts = c.Core.Toolkit.c_insts in
  List.iter
    (fun kind ->
      let name = Core.Workloads.miscompile_name kind in
      let found = ref false in
      List.iter
        (fun seed ->
          match Core.Workloads.inject_miscompile d ~seed kind insts with
          | None -> ()
          | Some (mutant, witness) ->
              found := true;
              let r =
                Tv.validate_program d ~labels:c.Core.Toolkit.c_labels
                  ~reference:insts ~candidate:mutant
              in
              check_bool (name ^ " refuted") true (r.Tv.v_refuted > 0);
              check_bool
                (name ^ " witness replays to divergent state")
                true
                (replay_diverges d witness insts mutant))
        [ 0; 1; 2; 3; 4 ];
      check_bool (name ^ " found an injectable site") true !found)
    Core.Workloads.all_miscompiles

(* An honest program validates against itself at the program level — the
   trivial but load-bearing false-alarm floor. *)
let test_program_self_validates () =
  let d = hp3 in
  let c = Core.Toolkit.compile Core.Toolkit.Yalll d (read_example "gcd.yll") in
  let insts = c.Core.Toolkit.c_insts in
  let r = Tv.validate_program d ~reference:insts ~candidate:insts in
  check_bool "no refutations" true (r.Tv.v_refuted = 0);
  check_bool "no unknowns" true (r.Tv.v_unknown = 0);
  check_bool "all validated" true (r.Tv.v_validated = r.Tv.v_total)

let () =
  Alcotest.run "tv"
    [
      ( "decide",
        [
          Alcotest.test_case "proved within budget" `Quick test_decide_proved;
          Alcotest.test_case "unknown when starved" `Quick test_decide_unknown;
          Alcotest.test_case "refuted with counterexample" `Quick
            test_decide_refuted;
        ] );
      ( "symexec",
        [
          Alcotest.test_case "matches the interpreter" `Quick
            test_symexec_matches_sim;
          Alcotest.test_case "normalizer identities" `Quick
            test_normalizer_identities;
        ] );
      ( "blocks",
        [
          Alcotest.test_case "verdict layers (add vs shl)" `Quick
            test_validate_words_layers;
          Alcotest.test_case "honest compaction validates" `Quick
            test_validate_honest_block;
          Alcotest.test_case "different blocks refuted" `Quick
            test_validate_different_blocks;
        ] );
      ( "programs",
        [
          Alcotest.test_case "miscompiles refuted and replayed" `Quick
            test_miscompiles_refuted;
          Alcotest.test_case "honest program self-validates" `Quick
            test_program_self_validates;
        ] );
    ]
