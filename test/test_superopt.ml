(* Tests for the -O2 window superoptimizer.

   The property the pass ships on: over every example program on every
   machine it targets, -O2 never emits more words than -O1, the final
   architectural state is bit-identical, and every accepted rewrite
   replays its proof obligation (Tv.validate_rewrite = Validated, no
   dynamic fallback).  Plus direct unit coverage of the window
   machinery: a window spanning a merged (jump-threaded) block edge, a
   referenced label fencing that same window off, an Int_ack word
   vetoing an otherwise-packable window, and the content-addressed
   memo serving a second search from the first. *)

open Msl_bitvec
open Msl_machine
open Msl_mir
module Toolkit = Msl_core.Toolkit

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let hp3 = Machines.hp3

(* -- corpus property: every example, every machine ----------------------- *)

let example_languages =
  [ (".yll", (Toolkit.Yalll, [ Machines.hp3; Machines.v11; Machines.b17 ]));
    (".simpl", (Toolkit.Simpl, [ Machines.hp3; Machines.h1; Machines.b17 ]));
    (".empl", (Toolkit.Empl, [ Machines.hp3; Machines.b17 ])) ]

let example_sources () =
  let dir =
    if Sys.file_exists "../examples" then "../examples" else "examples"
  in
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.filter_map (fun f ->
         List.find_map
           (fun (ext, (lang, machines)) ->
             if Filename.check_suffix f ext then
               Some (f, lang, machines, Filename.concat dir f)
             else None)
           example_languages)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* Full architectural state: every register plus the memory regions
   programs touch.  The superoptimizer's proof gate covers all register,
   flag and store outcomes, so -O2 must preserve even scratch state. *)
let observe d sim =
  let regs =
    Desc.regs d
    |> List.map (fun (r : Desc.reg) ->
           Printf.sprintf "%s=%Ld" r.Desc.r_name
             (Bitvec.to_int64 (Sim.get_reg_id sim r.Desc.r_id)))
  in
  let mem_region base len =
    List.init len (fun i ->
        let a = base + i in
        let v = Bitvec.to_int64 (Memory.peek (Sim.memory sim) a) in
        if v = 0L then "" else Printf.sprintf "m[%d]=%Ld" a v)
    |> List.filter (fun s -> s <> "")
  in
  let scratch = max 0 (d.Desc.d_scratch_base - 256) in
  let scratch_len = max 0 (min 320 (Memory.size (Sim.memory sim) - scratch)) in
  String.concat " "
    (regs @ mem_region 0 512 @ mem_region scratch scratch_len)

let o2_options =
  { Pipeline.default_options with Pipeline.opt_level = 2 }

let test_corpus () =
  let total_rewrites = ref 0 in
  List.iter
    (fun (name, lang, machines, path) ->
      let src = read_file path in
      List.iter
        (fun d ->
          let c1 = Toolkit.compile lang d src in
          let rewrites = ref [] in
          let c2 =
            Toolkit.compile ~options:o2_options
              ~superopt_capture:(fun rw -> rewrites := rw :: !rewrites)
              lang d src
          in
          check_bool
            (Printf.sprintf "%s on %s: O2 words (%d) <= O1 words (%d)" name
               d.Desc.d_name c2.Toolkit.c_words c1.Toolkit.c_words)
            true
            (c2.Toolkit.c_words <= c1.Toolkit.c_words);
          let s1 = observe d (Toolkit.run ~fuel:500_000 c1) in
          let s2 = observe d (Toolkit.run ~fuel:500_000 c2) in
          Alcotest.(check string)
            (Printf.sprintf "%s on %s: O2 state = O1 state" name d.Desc.d_name)
            s1 s2;
          total_rewrites := !total_rewrites + List.length !rewrites;
          List.iter
            (fun (rw : Superopt.rewrite) ->
              check_bool
                (Printf.sprintf "%s on %s: %s rewrite in %s replays Validated"
                   name d.Desc.d_name
                   (Superopt.kind_name rw.Superopt.rw_kind)
                   rw.Superopt.rw_label)
                true
                (Superopt.replay d rw = Tv.Validated))
            !rewrites;
          match c2.Toolkit.c_superopt with
          | None -> Alcotest.failf "%s on %s: -O2 reported no superopt stats"
                      name d.Desc.d_name
          | Some st ->
              check_int
                (Printf.sprintf "%s on %s: captured = accepted" name
                   d.Desc.d_name)
                st.Superopt.s_accepted
                (List.length !rewrites))
        machines)
    (example_sources ());
  check_bool "the corpus exercises at least one rewrite" true
    (!total_rewrites >= 1)

(* -- window-boundary units ------------------------------------------------ *)

let rid name = (Desc.get_reg hp3 name).Desc.r_id
let mov d s = Inst.make hp3 "mov" [ Inst.A_reg (rid d); Inst.A_reg (rid s) ]

let add d a b =
  Inst.make hp3 "add"
    [ Inst.A_reg (rid d); Inst.A_reg (rid a); Inst.A_reg (rid b) ]

let run_superopt ?memo ?observe ~extra_refs blocks =
  Superopt.run ?memo ?observe ~chain:Pipeline.default_options.Pipeline.chain
    ~node_budget:Pipeline.default_options.Pipeline.bb_budget ~extra_refs hp3
    blocks

let total_words blocks =
  List.fold_left (fun a (_, ws) -> a + List.length ws) 0 blocks

(* A goto to an otherwise-unreferenced layout successor: the merge pass
   threads the edge, and the repack window then spans it — mov (abus)
   and add (alu) pack into one word that no per-block compaction could
   have formed.  Every accepted rewrite must replay Validated. *)
let test_edge_window () =
  let blocks =
    [ ("entry", [ ([ mov "R1" "R2" ], Select.L_goto "tail") ]);
      ("tail", [ ([ add "R3" "R4" "R5" ], Select.L_halt) ]) ]
  in
  let seen = ref [] in
  let out, st =
    run_superopt ~observe:(fun rw -> seen := rw :: !seen) ~extra_refs:[]
      blocks
  in
  check_int "merged + packed down to one word" 1 (total_words out);
  check_bool "the fallthrough edge was merged" true (st.Superopt.s_merges >= 1);
  check_bool "a cross-edge repack was accepted" true
    (st.Superopt.s_accepted >= 1);
  check_int "one word saved" 1 st.Superopt.s_words_saved;
  List.iter
    (fun (rw : Superopt.rewrite) ->
      check_bool
        (Printf.sprintf "%s rewrite replays Validated"
           (Superopt.kind_name rw.Superopt.rw_kind))
        true
        (Superopt.replay hp3 rw = Tv.Validated))
    !seen

(* The same shape with the successor label referenced from outside (a
   procedure entry): the edge is a fence, nothing may merge across it,
   and the label must survive. *)
let test_referenced_fence () =
  let blocks =
    [ ("entry", [ ([ mov "R1" "R2" ], Select.L_goto "tail") ]);
      ("tail", [ ([ add "R3" "R4" "R5" ], Select.L_halt) ]) ]
  in
  let out, st = run_superopt ~extra_refs:[ "tail" ] blocks in
  check_int "no words removed" 2 (total_words out);
  check_int "no merges" 0 st.Superopt.s_merges;
  check_int "no rewrites" 0 st.Superopt.s_accepted;
  check_bool "the referenced label survives" true
    (List.mem_assoc "tail" out)

(* An Int_ack word vetoes its window.  The control pair (mov for the
   intack) packs to one word, proving the window was otherwise viable;
   with the intack in place the words must come through untouched and
   the skip must be counted. *)
let test_ack_window_skipped () =
  let with_first first =
    [ ("entry",
       [ ([ first ], Select.L_next); ([ add "R3" "R4" "R5" ], Select.L_halt) ])
    ]
  in
  let out_ctl, st_ctl =
    run_superopt ~extra_refs:[] (with_first (mov "R1" "R2"))
  in
  check_int "control: mov+add pack into one word" 1 (total_words out_ctl);
  check_bool "control: a repack was accepted" true
    (st_ctl.Superopt.s_accepted >= 1);
  let ack = Inst.make hp3 "intack" [] in
  let out, st = run_superopt ~extra_refs:[] (with_first ack) in
  check_int "ack words untouched" 2 (total_words out);
  check_int "no rewrite across the ack" 0 st.Superopt.s_accepted;
  check_bool "the skip was counted" true (st.Superopt.s_skipped_ack >= 1)

(* -- the memo -------------------------------------------------------------- *)

let test_memo_round_trip () =
  let store : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let memo =
    { Superopt.memo_find = Hashtbl.find_opt store;
      memo_add = (fun k v -> Hashtbl.replace store k v) }
  in
  let blocks () =
    [ ("entry", [ ([ mov "R1" "R2" ], Select.L_goto "tail") ]);
      ("tail", [ ([ add "R3" "R4" "R5" ], Select.L_halt) ]) ]
  in
  let out1, st1 = run_superopt ~memo ~extra_refs:[] (blocks ()) in
  check_bool "cold run misses" true (st1.Superopt.s_memo_misses >= 1);
  check_bool "the store was populated" true (Hashtbl.length store >= 1);
  let out2, st2 = run_superopt ~memo ~extra_refs:[] (blocks ()) in
  check_bool "warm run hits" true (st2.Superopt.s_memo_hits >= 1);
  check_bool "memoized result is identical" true (out1 = out2);
  (* a corrupted entry is a miss, never a miscompile *)
  Hashtbl.iter (fun k _ -> Hashtbl.replace store k "garbage") store;
  let out3, _ = run_superopt ~memo ~extra_refs:[] (blocks ()) in
  check_bool "corrupt memo falls back to a fresh search" true (out1 = out3)

let () =
  Alcotest.run "superopt"
    [
      ( "corpus",
        [ Alcotest.test_case
            "every example x machine: O2 <= O1, state equal, proofs replay"
            `Quick test_corpus ] );
      ( "windows",
        [
          Alcotest.test_case "window spans a jump-threaded block edge" `Quick
            test_edge_window;
          Alcotest.test_case "referenced label fences the window" `Quick
            test_referenced_fence;
          Alcotest.test_case "Int_ack window is skipped" `Quick
            test_ack_window_skipped;
        ] );
      ( "memo",
        [ Alcotest.test_case "find/add round trip, corruption safe" `Quick
            test_memo_round_trip ] );
    ]
