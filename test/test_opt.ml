(* Unit tests for the machine-independent MIR optimization passes: one
   group per pass, plus the regression that a Store-feeding assignment
   is never removed, and an end-to-end -O0 vs -O1 equivalence check. *)

open Msl_bitvec
open Msl_machine
open Msl_mir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let bv v = Bitvec.of_int ~width:16 v

let reg d name = Mir.Phys (Desc.get_reg d name).Desc.r_id
let vx i = Mir.Virt i

let block label stmts term =
  { Mir.b_label = label; b_stmts = stmts; b_term = term }

let prog ?(nvregs = 0) blocks =
  { Mir.main = blocks; procs = []; vreg_names = []; next_vreg = nvregs }

let main_block p label =
  match Mir.find_block p label with
  | Some b -> b
  | None -> Alcotest.failf "block %s disappeared" label

let stmts_of p label = (main_block p label).Mir.b_stmts

(* -- constant folding ---------------------------------------------------- *)

let test_fold_chain () =
  let d = Machines.hp3 in
  let r = reg d in
  let p =
    prog
      [
        block "entry"
          [
            Mir.assign (r "R1") (Mir.R_const (bv 6));
            Mir.assign (r "R2") (Mir.R_inc (r "R1"));
            Mir.assign (r "R3") (Mir.R_binop (Rtl.A_add, r "R1", r "R2"));
          ]
          Mir.Halt;
      ]
  in
  let p' = Opt.constant_fold p in
  let consts =
    List.filter_map
      (function
        | Mir.Assign { rv = Mir.R_const v; _ } -> Some (Bitvec.to_int v)
        | _ -> None)
      (stmts_of p' "entry")
  in
  Alcotest.(check (list int)) "whole chain folded" [ 6; 7; 13 ] consts

let test_fold_guards () =
  let d = Machines.hp3 in
  let r = reg d in
  let zero = Mir.assign (r "R2") (Mir.R_const (bv 0)) in
  let p =
    prog
      [
        block "entry"
          [
            Mir.assign (r "R1") (Mir.R_const (bv 9));
            zero;
            (* carry-in is runtime state: must not fold *)
            Mir.assign (r "R3") (Mir.R_binop (Rtl.A_adc, r "R1", r "R2"));
            (* division by a constant zero: must not fold *)
            Mir.assign (r "R4") (Mir.R_div (r "R1", r "R2"));
            (* flag-setting op keeps its opcode (the flags are the point) *)
            Mir.assign ~set_flags:true (r "R5") (Mir.R_inc (r "R1"));
          ]
          Mir.Halt;
      ]
  in
  let p' = Opt.constant_fold p in
  List.iter
    (function
      | Mir.Assign { dst; rv = Mir.R_const _; _ } when dst <> r "R1" && dst <> r "R2"
        ->
          Alcotest.fail "a guarded operation was folded to a constant"
      | _ -> ())
    (stmts_of p' "entry")

(* -- copy propagation ----------------------------------------------------- *)

let test_copy_prop () =
  let d = Machines.hp3 in
  let r = reg d in
  let p =
    prog
      [
        block "entry"
          [
            Mir.assign (r "R2") (Mir.R_copy (r "R1"));
            Mir.assign (r "R3") (Mir.R_binop (Rtl.A_add, r "R2", r "R2"));
            (* propagating R2 := R1 into R1 := R2 exposes a self-copy *)
            Mir.assign (r "R1") (Mir.R_copy (r "R2"));
          ]
          Mir.Halt;
      ]
  in
  let p' = Opt.copy_prop p in
  let stmts = stmts_of p' "entry" in
  check_int "self-copy dropped" 2 (List.length stmts);
  match stmts with
  | [ _; Mir.Assign { rv = Mir.R_binop (Rtl.A_add, a, b); _ } ] ->
      check_bool "reads rewritten to the copy source" true
        (a = r "R1" && b = r "R1")
  | _ -> Alcotest.fail "unexpected block shape after copy-prop"

(* -- dead-assignment elimination ------------------------------------------ *)

let test_dce_overwritten () =
  let d = Machines.hp3 in
  let r = reg d in
  let p =
    prog
      [
        block "entry"
          [
            Mir.assign (r "R1") (Mir.R_const (bv 1));  (* dead: overwritten *)
            Mir.assign (r "R1") (Mir.R_const (bv 2));
          ]
          Mir.Halt;
      ]
  in
  check_int "overwritten assignment removed" 1
    (List.length (stmts_of (Opt.dce p) "entry"))

let test_dce_store_feed () =
  (* regression: an assignment whose only reader is a Store operand must
     survive — deleting it would change memory *)
  let d = Machines.hp3 in
  let r = reg d in
  let p =
    prog ~nvregs:1
      [
        block "entry"
          [
            Mir.assign (vx 0) (Mir.R_const (bv 42));
            Mir.Store { addr = r "R1"; src = vx 0 };
          ]
          Mir.Halt;
      ]
  in
  let p' = Opt.dce p in
  let stmts = stmts_of p' "entry" in
  check_int "store and its feeding assignment survive" 2 (List.length stmts);
  check_bool "the store is still a store" true
    (match stmts with [ _; Mir.Store _ ] -> true | _ -> false)

let test_dce_keeps_flags_and_loads () =
  let d = Machines.hp3 in
  let r = reg d in
  let p =
    prog ~nvregs:2
      [
        block "entry"
          [
            (* dead destination, but the flags are observable *)
            Mir.assign ~set_flags:true (vx 0) (Mir.R_inc (r "R1"));
            (* dead destination, but a load may fault under trap handling *)
            Mir.assign (vx 1) (Mir.R_mem (r "R1"));
          ]
          Mir.Halt;
      ]
  in
  check_int "flag writer and load both kept" 2
    (List.length (stmts_of (Opt.dce p) "entry"))

(* -- branch simplification ------------------------------------------------- *)

let test_branch_simplify () =
  let d = Machines.hp3 in
  let r = reg d in
  let p =
    prog
      [
        block "entry"
          [ Mir.assign (r "R1") (Mir.R_const (bv 0)) ]
          (Mir.If (Mir.Zero (r "R1"), "yes", "no"));
        block "yes" [] Mir.Halt;
        block "no" [] (Mir.Goto "yes");
        block "same" [] (Mir.If (Mir.Nonzero (r "R2"), "yes", "yes"));
      ]
  in
  let p' = Opt.branch_simplify p in
  check_bool "constant test decided" true
    ((main_block p' "entry").Mir.b_term = Mir.Goto "yes");
  check_bool "coinciding arms collapsed" true
    ((main_block p' "same").Mir.b_term = Mir.Goto "yes")

let test_jump_thread () =
  let d = Machines.hp3 in
  let r = reg d in
  let p =
    prog
      [
        block "entry"
          [ Mir.assign (r "R1") (Mir.R_const (bv 1)) ]
          (Mir.Goto "hop");
        block "hop" [] (Mir.Goto "target");  (* empty forwarder *)
        block "target" [] Mir.Halt;
        block "orphan" [ Mir.assign (r "R2") (Mir.R_const (bv 9)) ] Mir.Halt;
      ]
  in
  let p' = Opt.jump_thread p in
  check_bool "jump threaded past the forwarder" true
    ((main_block p' "entry").Mir.b_term = Mir.Goto "target");
  check_bool "forwarder gone" true (Mir.find_block p' "hop" = None);
  check_bool "unreachable block gone" true (Mir.find_block p' "orphan" = None)

let test_jump_thread_keeps_loops () =
  (* an empty self-loop is an intentional infinite loop: threading must
     not chase the cycle forever or break it *)
  let p =
    prog
      [
        block "entry" [] (Mir.Goto "spin");
        block "spin" [] (Mir.Goto "spin");
      ]
  in
  let p' = Opt.jump_thread p in
  check_bool "self-loop preserved" true
    ((main_block p' "spin").Mir.b_term = Mir.Goto "spin")

(* -- end to end ------------------------------------------------------------ *)

let test_o1_matches_o0 () =
  (* a loop the optimizer cannot fold away entirely: same final state,
     no more words *)
  let d = Machines.hp3 in
  let src =
    "begin 7 -> R1; 0 -> R2; while R1 <> 0 do begin R2 + R1 -> R2; R1 - 1 \
     -> R1; end; end"
  in
  let p = Msl_simpl.Compile.parse_compile d src in
  let run opt_level =
    let sim, _, m =
      Pipeline.load
        ~options:{ Pipeline.default_options with opt_level }
        d p
    in
    (match Sim.run sim with
    | Sim.Halted -> ()
    | Sim.Out_of_fuel -> Alcotest.fail "did not halt");
    (Bitvec.to_int (Sim.get_reg sim "R2"), m.Pipeline.m_instructions)
  in
  let v0, w0 = run 0 in
  let v1, w1 = run 1 in
  check_int "-O0 computes the sum" 28 v0;
  check_int "-O1 computes the same sum" v0 v1;
  check_bool
    (Printf.sprintf "-O1 words (%d) <= -O0 words (%d)" w1 w0)
    true (w1 <= w0)

let () =
  Alcotest.run "opt"
    [
      ( "fold",
        [
          Alcotest.test_case "chain" `Quick test_fold_chain;
          Alcotest.test_case "guards" `Quick test_fold_guards;
        ] );
      ("copy-prop", [ Alcotest.test_case "basic" `Quick test_copy_prop ]);
      ( "dce",
        [
          Alcotest.test_case "overwritten" `Quick test_dce_overwritten;
          Alcotest.test_case "store feed kept" `Quick test_dce_store_feed;
          Alcotest.test_case "flags and loads kept" `Quick
            test_dce_keeps_flags_and_loads;
        ] );
      ( "branches",
        [
          Alcotest.test_case "simplify" `Quick test_branch_simplify;
          Alcotest.test_case "thread" `Quick test_jump_thread;
          Alcotest.test_case "keeps loops" `Quick test_jump_thread_keeps_loops;
        ] );
      ( "pipeline",
        [ Alcotest.test_case "-O1 matches -O0" `Quick test_o1_matches_o0 ] );
    ]
