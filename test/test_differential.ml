(* The differential compaction oracle.

   Every compaction algorithm × transport-chaining setting must be
   observationally equivalent: same final register file, same final
   memory, same halt-vs-divergence behaviour — on seeded microoperation
   blocks, on seeded whole programs through the allocator, and on every
   example program shipped in examples/.  Additionally every schedule
   must satisfy the conflict model (Compaction.check), and the
   branch-and-bound algorithm must never be beaten by its own
   list-scheduling fallback (Optimal <= Critical_path in words). *)

open Msl_bitvec
open Msl_machine
open Msl_mir
module Core = Msl_core
module Toolkit = Msl_core.Toolkit

let algos =
  [ Compaction.Sequential; Compaction.Fcfs; Compaction.Critical_path;
    Compaction.Optimal ]

let chains = [ true; false ]

(* -- observational state ------------------------------------------------------ *)

(* Registers plus the memory regions programs touch (the low pages and
   the spill scratchpad), rendered so Alcotest can diff them. *)
let observe d sim =
  let regs =
    Desc.regs d
    |> List.map (fun (r : Desc.reg) ->
           Printf.sprintf "%s=%Ld" r.Desc.r_name
             (Bitvec.to_int64 (Sim.get_reg_id sim r.Desc.r_id)))
  in
  let mem_region base len =
    List.init len (fun i ->
        let a = base + i in
        let v = Bitvec.to_int64 (Memory.peek (Sim.memory sim) a) in
        if v = 0L then "" else Printf.sprintf "m[%d]=%Ld" a v)
    |> List.filter (fun s -> s <> "")
  in
  let scratch = max 0 (d.Desc.d_scratch_base - 256) in
  let scratch_len = max 0 (min 320 (Memory.size (Sim.memory sim) - scratch)) in
  String.concat " "
    (regs @ mem_region 0 512 @ mem_region scratch scratch_len)

(* -- seeded microoperation blocks --------------------------------------------- *)

let run_block d groups =
  let insts =
    List.map (fun g -> { Inst.ops = g; next = Inst.Next }) groups
    @ [ { Inst.ops = []; next = Inst.Halt } ]
  in
  let sim = Sim.create d in
  Sim.load_store sim insts;
  (* deterministic nonzero initial state so moves are visible *)
  Array.iteri
    (fun i (r : Desc.reg) ->
      Sim.set_reg_id sim r.Desc.r_id
        (Bitvec.of_int ~width:r.Desc.r_width (i * 7919 + 13)))
    (Desc.regs d |> Array.of_list);
  (match Sim.run sim with
  | Sim.Halted -> ()
  | Sim.Out_of_fuel -> Alcotest.fail "block did not halt");
  observe d sim

let block_machines = [ Machines.hp3; Machines.h1; Machines.b17 ]

(* 60 seeded block workloads: machine, size and dependence density all
   driven off the seed. *)
let block_cases =
  List.init 60 (fun seed ->
      let d = List.nth block_machines (seed mod 3) in
      let n = 4 + (seed * 7 mod 24) in
      let p_dep = seed * 13 mod 95 in
      (seed + 1, d, n, p_dep))

let test_blocks () =
  List.iter
    (fun (seed, d, n, p_dep) ->
      let ops = Core.Workloads.compaction_block d ~seed ~n ~p_dep in
      let reference = run_block d (List.map (fun o -> [ o ]) ops) in
      List.iter
        (fun chain ->
          let words = Hashtbl.create 4 in
          List.iter
            (fun algo ->
              let r = Compaction.compact ~chain ~algo d ops in
              Hashtbl.replace words algo (List.length r.Compaction.groups);
              Alcotest.(check bool)
                (Printf.sprintf "seed %d %s %s chain=%b passes check" seed
                   d.Desc.d_name (Compaction.algo_name algo) chain)
                true
                (Compaction.check ~chain d ops r.Compaction.groups);
              Alcotest.(check string)
                (Printf.sprintf "seed %d %s %s chain=%b state" seed
                   d.Desc.d_name (Compaction.algo_name algo) chain)
                reference
                (run_block d r.Compaction.groups))
            algos;
          Alcotest.(check bool)
            (Printf.sprintf "seed %d %s chain=%b: optimal <= critical-path"
               seed d.Desc.d_name chain)
            true
            (Hashtbl.find words Compaction.Optimal
            <= Hashtbl.find words Compaction.Critical_path))
        chains)
    block_cases

(* -- whole programs through the full pipeline --------------------------------- *)

let compile_and_observe lang d options src =
  let c = Toolkit.compile ~options lang d src in
  let sim = Toolkit.run ~fuel:500_000 c in
  (observe d sim, c.Toolkit.c_words)

let check_program what lang d src =
  let reference =
    compile_and_observe lang d Pipeline.default_options src |> fst
  in
  let words = Hashtbl.create 4 in
  List.iter
    (fun chain ->
      List.iter
        (fun algo ->
          let options = { Pipeline.default_options with algo; chain } in
          let state, nwords = compile_and_observe lang d options src in
          if chain then Hashtbl.replace words algo nwords;
          Alcotest.(check string)
            (Printf.sprintf "%s on %s: %s chain=%b" what d.Desc.d_name
               (Compaction.algo_name algo) chain)
            reference state)
        algos)
    chains;
  Alcotest.(check bool)
    (Printf.sprintf "%s on %s: optimal <= critical-path words" what
       d.Desc.d_name)
    true
    (Hashtbl.find words Compaction.Optimal
    <= Hashtbl.find words Compaction.Critical_path)

(* seeded EMPL pressure programs: compaction choices downstream of the
   register allocator (spill code included) must not change results *)
let test_pressure_programs () =
  List.iter
    (fun seed ->
      let src =
        Core.Workloads.pressure_program ~seed ~nvars:10 ~nops:16
      in
      check_program
        (Printf.sprintf "pressure seed %d" seed)
        Toolkit.Empl Machines.hp3 src)
    [ 1; 2; 3; 4; 5; 6 ]

(* seeded YALLL corpus programs across all three 16-bit machines *)
let test_yalll_programs () =
  List.iter
    (fun seed ->
      let src = Core.Workloads.yalll_program ~seed ~len:14 in
      List.iter
        (fun d ->
          check_program
            (Printf.sprintf "yalll seed %d" seed)
            Toolkit.Yalll d src)
        [ Machines.hp3; Machines.v11; Machines.b17 ])
    [ 1; 2; 3; 4 ]

(* -- every example program ------------------------------------------------------ *)

let example_languages =
  [ (".yll", (Toolkit.Yalll, [ Machines.hp3; Machines.v11; Machines.b17 ]));
    (".simpl", (Toolkit.Simpl, [ Machines.hp3; Machines.h1; Machines.b17 ]));
    (".empl", (Toolkit.Empl, [ Machines.hp3; Machines.b17 ])) ]

let example_sources () =
  let dir =
    if Sys.file_exists "../examples" then "../examples" else "examples"
  in
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.filter_map (fun f ->
         List.find_map
           (fun (ext, (lang, machines)) ->
             if Filename.check_suffix f ext then
               Some (f, lang, machines, Filename.concat dir f)
             else None)
           example_languages)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_examples () =
  let sources = example_sources () in
  Alcotest.(check bool)
    "found the example corpus" true
    (List.length sources >= 6);
  List.iter
    (fun (name, lang, machines, path) ->
      let src = read_file path in
      List.iter (fun d -> check_program name lang d src) machines)
    sources

(* -- -O1 vs -O0 ----------------------------------------------------------------- *)

(* The optimizer's observability contract: source-visible physical
   registers and program memory at exit are preserved exactly.  The
   machine's reserved scratch registers (classes "at"/"at2"/"acc") and
   the spill pad above [d_scratch_base] are compiler-internal — which
   registers the backend scratches through legitimately changes with the
   program the optimizer hands it — so the oracle compares everything
   but those.  -O1 must also never emit more words than -O0. *)

let scratch_classes = [ "at"; "at2"; "acc" ]

let program_phys_regs (p : Mir.program) =
  let add acc = function Mir.Phys i -> i :: acc | Mir.Virt _ -> acc in
  let of_block acc (b : Mir.block) =
    let acc =
      List.fold_left
        (fun acc s ->
          List.fold_left add acc (Mir.stmt_reads s @ Mir.stmt_writes s))
        acc b.Mir.b_stmts
    in
    List.fold_left add acc (Mir.term_reads b.Mir.b_term)
  in
  List.fold_left of_block [] (Mir.all_blocks p) |> List.sort_uniq compare

let observe_visible d regs sim =
  let visible =
    Desc.regs d
    |> List.filter (fun (r : Desc.reg) ->
           List.mem r.Desc.r_id regs
           && not (List.exists (Desc.reg_in_class r) scratch_classes))
  in
  let reg_part =
    List.map
      (fun (r : Desc.reg) ->
        Printf.sprintf "%s=%Ld" r.Desc.r_name
          (Bitvec.to_int64 (Sim.get_reg_id sim r.Desc.r_id)))
      visible
  in
  let mem_region base len =
    List.init len (fun i ->
        let a = base + i in
        let v = Bitvec.to_int64 (Memory.peek (Sim.memory sim) a) in
        if v = 0L then "" else Printf.sprintf "m[%d]=%Ld" a v)
    |> List.filter (fun s -> s <> "")
  in
  let data = max 0 (d.Desc.d_scratch_base - 256) in
  String.concat " "
    (reg_part @ mem_region 0 512
    @ mem_region data (d.Desc.d_scratch_base - data))

let check_opt_levels what d (p : Mir.program) =
  let regs = program_phys_regs p in
  let run opt_level =
    let sim, _, m =
      Pipeline.load ~options:{ Pipeline.default_options with opt_level } d p
    in
    (match Sim.run ~fuel:500_000 sim with
    | Sim.Halted -> ()
    | Sim.Out_of_fuel ->
        Alcotest.failf "%s at -O%d did not halt" what opt_level);
    (observe_visible d regs sim, m.Pipeline.m_instructions)
  in
  let s0, w0 = run 0 in
  let s1, w1 = run 1 in
  Alcotest.(check string)
    (Printf.sprintf "%s on %s: -O1 state = -O0 state" what d.Desc.d_name)
    s0 s1;
  Alcotest.(check bool)
    (Printf.sprintf "%s on %s: -O1 words (%d) <= -O0 words (%d)" what
       d.Desc.d_name w1 w0)
    true (w1 <= w0)

let test_opt_blocks () =
  (* seeded straight-line blocks wrapped as one-block programs *)
  List.iter
    (fun seed ->
      let d = List.nth block_machines (seed mod 3) in
      let n = 6 + (seed * 5 mod 20) in
      let stmts = Core.Workloads.simpl_block d ~seed ~n ~p_dep:40 in
      let p =
        { Mir.main =
            [ { Mir.b_label = "b"; b_stmts = stmts; b_term = Mir.Halt } ];
          procs = []; vreg_names = []; next_vreg = 0 }
      in
      check_opt_levels (Printf.sprintf "opt block seed %d" seed) d p)
    (List.init 12 (fun i -> i + 1))

let test_opt_generated () =
  List.iter
    (fun seed ->
      let src = Core.Workloads.pressure_program ~seed ~nvars:10 ~nops:16 in
      check_opt_levels
        (Printf.sprintf "opt pressure seed %d" seed)
        Machines.hp3
        (Msl_empl.Compile.parse_compile Machines.hp3 src))
    [ 1; 2; 3; 4; 5; 6 ];
  List.iter
    (fun seed ->
      let src = Core.Workloads.yalll_program ~seed ~len:14 in
      List.iter
        (fun d ->
          check_opt_levels
            (Printf.sprintf "opt yalll seed %d" seed)
            d
            (Msl_yalll.Compile.parse_compile d src))
        [ Machines.hp3; Machines.v11; Machines.b17 ])
    [ 1; 2; 3; 4 ]

let test_opt_examples () =
  List.iter
    (fun (name, lang, machines, path) ->
      let src = read_file path in
      let parse d =
        match lang with
        | Toolkit.Simpl -> Msl_simpl.Compile.parse_compile d src
        | Toolkit.Empl -> Msl_empl.Compile.parse_compile d src
        | Toolkit.Yalll -> Msl_yalll.Compile.parse_compile d src
        | Toolkit.Sstar -> assert false  (* no MIR; not in this corpus *)
      in
      List.iter (fun d -> check_opt_levels name d (parse d)) machines)
    (example_sources ())

let () =
  Alcotest.run "differential"
    [
      ( "oracle",
        [
          Alcotest.test_case "60 seeded blocks x 4 algos x chain on/off"
            `Quick test_blocks;
          Alcotest.test_case "EMPL pressure programs" `Quick
            test_pressure_programs;
          Alcotest.test_case "YALLL corpus programs" `Quick
            test_yalll_programs;
          Alcotest.test_case "every examples/* program" `Quick test_examples;
        ] );
      ( "opt oracle",
        [
          Alcotest.test_case "-O1 vs -O0 on seeded blocks" `Quick
            test_opt_blocks;
          Alcotest.test_case "-O1 vs -O0 on generated programs" `Quick
            test_opt_generated;
          Alcotest.test_case "-O1 vs -O0 on every example" `Quick
            test_opt_examples;
        ] );
    ]
