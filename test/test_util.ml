(* Unit tests for the utility layer: locations, diagnostics, the scanner
   and the table renderer. *)

module Loc = Msl_util.Loc
module Diag = Msl_util.Diag
module Scanner = Msl_util.Scanner
module Tbl = Msl_util.Tbl
module Safe_queue = Msl_util.Safe_queue
module Clock = Msl_util.Clock

let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -- locations ------------------------------------------------------------ *)

let test_loc () =
  let p1 = { Loc.line = 2; col = 3; offset = 10 } in
  let p2 = { Loc.line = 2; col = 9; offset = 16 } in
  let l = Loc.make ~file:"f.mc" ~start_pos:p1 ~end_pos:p2 in
  check_str "same-line span" "f.mc:2.3-9" (Loc.to_string l);
  let p3 = { Loc.line = 4; col = 1; offset = 30 } in
  let l2 = Loc.make ~file:"f.mc" ~start_pos:p2 ~end_pos:p3 in
  check_str "multi-line span" "f.mc:2.9-4.1" (Loc.to_string l2);
  check_bool "dummy" true (Loc.is_dummy Loc.dummy);
  let m = Loc.merge l l2 in
  check_str "merge covers both" "f.mc:2.3-4.1" (Loc.to_string m);
  check_str "merge with dummy" (Loc.to_string l)
    (Loc.to_string (Loc.merge Loc.dummy l))

(* -- diagnostics ----------------------------------------------------------- *)

let test_diag () =
  (match Diag.error Diag.Parsing "bad %s at %d" "token" 7 with
  | exception Diag.Error d ->
      check_str "message formatted" "bad token at 7" d.Diag.message;
      check_bool "phase" true (d.Diag.phase = Diag.Parsing);
      check_str "rendering" "parse error: bad token at 7" (Diag.to_string d)
  | _ -> Alcotest.fail "expected a diagnostic");
  match Diag.protect (fun () -> Diag.error Diag.Codegen "nope") with
  | Error d -> check_bool "protect captures" true (d.Diag.phase = Diag.Codegen)
  | Ok _ -> Alcotest.fail "expected Error"

(* -- scanner ---------------------------------------------------------------- *)

let test_scanner () =
  let sc = Scanner.make ~file:"t" "ab cd\nef" in
  check_str "ident" "ab" (Scanner.ident sc);
  Scanner.skip_spaces sc;
  check_str "second ident" "cd" (Scanner.ident sc);
  Scanner.skip_spaces sc;
  let pos = Scanner.pos sc in
  check_int "line tracked" 2 pos.Loc.line;
  check_int "col tracked" 1 pos.Loc.col;
  check_bool "eat" true (Scanner.eat sc 'e');
  check_bool "eat wrong" false (Scanner.eat sc 'x');
  check_bool "peek" true (Scanner.peek sc = Some 'f');
  Scanner.advance sc;
  check_bool "eof" true (Scanner.eof sc)

let test_scanner_hspaces () =
  let sc = Scanner.make ~file:"t" "  \t x\ny" in
  Scanner.skip_hspaces sc;
  check_bool "stops at x" true (Scanner.peek sc = Some 'x');
  Scanner.advance sc;
  Scanner.skip_hspaces sc;
  check_bool "does not cross newline" true (Scanner.peek sc = Some '\n')

(* -- tables ------------------------------------------------------------------ *)

let test_tbl () =
  let t = Tbl.make ~title:"demo" ~aligns:[ Tbl.Left; Tbl.Right ] [ "name"; "n" ] in
  Tbl.add_row t [ "alpha"; "1" ];
  Tbl.add_row t [ "b"; "22" ];
  let r = Tbl.render t in
  check_bool "title present" true
    (String.length r > 0 && String.sub r 0 7 = "== demo");
  (* right-aligned numeric column *)
  check_bool "alignment" true
    (let lines = String.split_on_char '\n' r in
     List.exists (fun l -> l = "b      22") lines);
  check_int "rows" 2 (List.length (Tbl.rows t));
  (match Tbl.add_row t [ "only-one" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected arity failure");
  check_str "pct" "+50.0%" (Tbl.cell_pct 9 6);
  check_str "pct n/a" "n/a" (Tbl.cell_pct 9 0);
  check_str "ratio" "1.50x" (Tbl.cell_ratio 9 6)

(* -- the work queue -------------------------------------------------------- *)

let test_queue_fifo () =
  let q = Safe_queue.create () in
  check_bool "push 1" true (Safe_queue.push q 1);
  check_bool "push 2" true (Safe_queue.push q 2);
  check_int "length" 2 (Safe_queue.length q);
  Safe_queue.close q;
  let p1 = Safe_queue.pop q in
  let p2 = Safe_queue.pop q in
  let p3 = Safe_queue.pop q in
  Alcotest.(check (list (option int)))
    "drained in order"
    [ Some 1; Some 2; None ]
    [ p1; p2; p3 ]

(* The push-after-close race: a producer racing close must see a
   rejected push, not an exception that would kill its domain. *)
let test_queue_push_after_close () =
  let q = Safe_queue.create () in
  check_bool "open push accepted" true (Safe_queue.push q 1);
  Safe_queue.close q;
  check_bool "closed push rejected" false (Safe_queue.push q 2);
  check_int "rejected push dropped" 1 (Safe_queue.length q);
  (* the already-enqueued job still drains; the dropped one never shows *)
  let p1 = Safe_queue.pop q in
  let p2 = Safe_queue.pop q in
  Alcotest.(check (list (option int))) "drain after close" [ Some 1; None ]
    [ p1; p2 ];
  (* close is idempotent and pushes stay rejected *)
  Safe_queue.close q;
  check_bool "still rejected" false (Safe_queue.push q 3)

(* -- the bounded queue (pushback-style negotiated flow) -------------------- *)

(* A bounded push beyond capacity must block until a consumer pops; the
   blocked pusher runs in its own domain so the test can observe the
   block from outside. *)
let test_queue_bounded_blocks () =
  let q = Safe_queue.create ~capacity:2 () in
  check_bool "push 1" true (Safe_queue.push q 1);
  check_bool "push 2" true (Safe_queue.push q 2);
  let entered = Atomic.make false in
  let pushed = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Atomic.set entered true;
        let r = Safe_queue.push q 3 in
        Atomic.set pushed true;
        r)
  in
  (* give the pusher ample time to block on the full queue *)
  while not (Atomic.get entered) do Domain.cpu_relax () done;
  Unix.sleepf 0.05;
  check_bool "push at capacity is blocked" false (Atomic.get pushed);
  check_int "queue holds exactly capacity" 2 (Safe_queue.length q);
  (* one pop frees one slot and unblocks the pusher *)
  Alcotest.(check (option int)) "pop head" (Some 1) (Safe_queue.pop q);
  check_bool "blocked push completed after pop" true (Domain.join d);
  check_int "bound still holds" 2 (Safe_queue.length q);
  Safe_queue.close q;
  (* bind each pop: list elements evaluate right-to-left *)
  let p1 = Safe_queue.pop q in
  let p2 = Safe_queue.pop q in
  let p3 = Safe_queue.pop q in
  Alcotest.(check (list (option int)))
    "drains in order" [ Some 2; Some 3; None ] [ p1; p2; p3 ]

(* close must wake a pusher blocked on a full queue, which then reports
   the rejected push instead of sleeping forever. *)
let test_queue_bounded_close_wakes_pusher () =
  let q = Safe_queue.create ~capacity:1 () in
  check_bool "push 1" true (Safe_queue.push q 1);
  let d = Domain.spawn (fun () -> Safe_queue.push q 2) in
  Unix.sleepf 0.05;
  Safe_queue.close q;
  check_bool "woken pusher sees the close" false (Domain.join d);
  let p1 = Safe_queue.pop q in
  let p2 = Safe_queue.pop q in
  Alcotest.(check (list (option int)))
    "only the accepted item drains" [ Some 1; None ] [ p1; p2 ]

let test_queue_bad_capacity () =
  match Safe_queue.create ~capacity:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for capacity 0"

(* -- the monotonic clock --------------------------------------------------- *)

(* The regression half of the Service clock switch: the source used for
   deadlines/backoff/queue-wait must never go backwards (gettimeofday
   can, under an NTP step) and must track real elapsed time. *)
let test_clock_monotone () =
  let prev = ref (Clock.now_ns ()) in
  for _ = 1 to 10_000 do
    let t = Clock.now_ns () in
    if Int64.compare t !prev < 0 then
      Alcotest.failf "clock went backwards: %Ld after %Ld" t !prev;
    prev := t
  done;
  let t0 = Clock.now_s () in
  Unix.sleepf 0.05;
  let dt = Clock.elapsed_s t0 in
  if dt < 0.04 || dt > 5.0 then
    Alcotest.failf "elapsed_s across a 50 ms sleep: %.4f s" dt

let () =
  Alcotest.run "util"
    [
      ( "util",
        [
          Alcotest.test_case "locations" `Quick test_loc;
          Alcotest.test_case "diagnostics" `Quick test_diag;
          Alcotest.test_case "scanner" `Quick test_scanner;
          Alcotest.test_case "scanner hspaces" `Quick test_scanner_hspaces;
          Alcotest.test_case "tables" `Quick test_tbl;
          Alcotest.test_case "queue fifo" `Quick test_queue_fifo;
          Alcotest.test_case "queue push after close" `Quick
            test_queue_push_after_close;
          Alcotest.test_case "bounded queue blocks at capacity" `Quick
            test_queue_bounded_blocks;
          Alcotest.test_case "bounded queue close wakes pushers" `Quick
            test_queue_bounded_close_wakes_pusher;
          Alcotest.test_case "bounded queue rejects capacity 0" `Quick
            test_queue_bad_capacity;
          Alcotest.test_case "monotonic clock" `Quick test_clock_monotone;
        ] );
    ]
