(* The tracing layer: JSON round-trips, event-stream invariants under a
   concurrent batch (valid complete JSONL, balanced spans, monotone
   counters), and the zero-allocation contract of the disabled path.

   Tracing is process-global, so every test that enables it does so
   inside [traced] — enable, run, disable — and the suites run
   sequentially (alcotest's default). *)

module Trace = Msl_util.Trace
module Core = Msl_core
module Service = Msl_core.Service
module Toolkit = Msl_core.Toolkit

let tmp_trace () = Filename.temp_file "msl_test_trace" ".jsonl"

let traced f =
  let path = tmp_trace () in
  Trace.enable_file path;
  Fun.protect ~finally:Trace.disable f;
  Trace.disable ();
  let events =
    match Trace.read_events path with
    | Ok es -> es
    | Error msg -> Alcotest.failf "trace did not parse back: %s" msg
  in
  Sys.remove path;
  events

(* -- the JSON parser ----------------------------------------------------- *)

let test_parse_json () =
  let ok what s expected =
    match Trace.parse_json s with
    | Ok j -> Alcotest.(check bool) what true (j = expected)
    | Error msg -> Alcotest.failf "%s: %s" what msg
  in
  ok "number" "42" (Trace.J_num 42.0);
  ok "negative float" "-2.5" (Trace.J_num (-2.5));
  ok "string escapes" {|"a\"b\\c\n"|} (Trace.J_str "a\"b\\c\n");
  ok "nested" {|{"a":[1,true,null],"b":{"c":""}}|}
    (Trace.J_obj
       [
         ("a", Trace.J_arr [ Trace.J_num 1.0; Trace.J_bool true; Trace.J_null ]);
         ("b", Trace.J_obj [ ("c", Trace.J_str "") ]);
       ]);
  let bad what s =
    match Trace.parse_json s with
    | Ok _ -> Alcotest.failf "%s: expected a parse error" what
    | Error _ -> ()
  in
  bad "trailing garbage" "1 2";
  bad "unterminated string" {|"abc|};
  bad "bare word" "nope";
  bad "unclosed object" {|{"a":1|}

(* -- emission round-trip -------------------------------------------------- *)

let test_round_trip () =
  let events =
    traced (fun () ->
        Trace.with_span ~cat:"t" "outer"
          ~args:[ ("s", Trace.A_string "quote\"back\\slash") ]
          (fun () ->
            Trace.counter ~cat:"t" "c" 1;
            Trace.counter ~cat:"t" "c" 5;
            Trace.instant ~cat:"t" "i"
              ~args:
                [
                  ("n", Trace.A_int (-3));
                  ("f", Trace.A_float 0.5);
                  ("b", Trace.A_bool true);
                ]))
  in
  Alcotest.(check int) "five events" 5 (List.length events);
  let phs = List.map (fun e -> e.Trace.ev_ph) events in
  Alcotest.(check (list string)) "phases" [ "B"; "C"; "C"; "i"; "E" ] phs;
  let outer = List.hd events in
  Alcotest.(check bool) "escaped string survives" true
    (List.assoc "s" outer.Trace.ev_args = Trace.J_str "quote\"back\\slash");
  let inst = List.nth events 3 in
  Alcotest.(check bool) "int arg" true
    (List.assoc "n" inst.Trace.ev_args = Trace.J_num (-3.0));
  Alcotest.(check bool) "bool arg" true
    (List.assoc "b" inst.Trace.ev_args = Trace.J_bool true);
  (* timestamps never run backwards in emission order *)
  let rec mono = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "ts monotone" true (a.Trace.ev_ts <= b.Trace.ev_ts);
        mono rest
    | _ -> ()
  in
  mono events

let test_span_end_on_exception () =
  let events =
    traced (fun () ->
        try
          Trace.with_span ~cat:"t" "failing" (fun () -> failwith "boom")
        with Failure _ -> ())
  in
  Alcotest.(check (list string)) "end emitted on raise" [ "B"; "E" ]
    (List.map (fun e -> e.Trace.ev_ph) events)

(* -- stream invariants under a concurrent batch --------------------------- *)

let batch_jobs () =
  List.init 24 (fun i ->
      Service.job
        ~id:(Printf.sprintf "j%02d" i)
        Toolkit.Yalll ~machine:"hp3"
        ~source:(Core.Workloads.yalll_program ~seed:(1 + (i mod 6)) ~len:12))

let test_concurrent_batch_stream () =
  let events =
    traced (fun () ->
        let s = Service.create ~domains:4 () in
        ignore (Service.run_batch ~domains:4 s (batch_jobs ())))
  in
  Alcotest.(check bool) "events were emitted" true (events <> []);
  (* seq is a global total order: strictly increasing in file order *)
  ignore
    (List.fold_left
       (fun prev e ->
         Alcotest.(check bool) "seq strictly increasing" true
           (e.Trace.ev_seq > prev);
         e.Trace.ev_seq)
       0 events);
  (* spans balance per domain: depth never below zero, zero at the end *)
  let depth = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let d = try Hashtbl.find depth e.Trace.ev_tid with Not_found -> 0 in
      match e.Trace.ev_ph with
      | "B" -> Hashtbl.replace depth e.Trace.ev_tid (d + 1)
      | "E" ->
          Alcotest.(check bool) "no end before begin" true (d > 0);
          Hashtbl.replace depth e.Trace.ev_tid (d - 1)
      | _ -> ())
    events;
  Hashtbl.iter
    (fun tid d ->
      Alcotest.(check int) (Printf.sprintf "tid %d spans closed" tid) 0 d)
    depth;
  (* counters are monotone in seq order: they are emitted inside the
     lock that guards the counted state *)
  let last = Hashtbl.create 8 in
  List.iter
    (fun e ->
      if e.Trace.ev_ph = "C" then begin
        let v =
          match List.assoc_opt "value" e.Trace.ev_args with
          | Some (Trace.J_num v) -> v
          | _ -> Alcotest.failf "counter %s without a value" e.Trace.ev_name
        in
        let key = (e.Trace.ev_cat, e.Trace.ev_name) in
        (match Hashtbl.find_opt last key with
        | Some prev ->
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s monotone" e.Trace.ev_cat e.Trace.ev_name)
              true (v >= prev)
        | None -> ());
        Hashtbl.replace last key v
      end)
    events;
  (* the batch is covered: one job span per job, and the service's
     cache counters appeared *)
  let job_begins =
    List.length
      (List.filter
         (fun e ->
           e.Trace.ev_ph = "B" && e.Trace.ev_cat = "service"
           && e.Trace.ev_name = "job")
         events)
  in
  Alcotest.(check int) "one span per job" 24 job_begins;
  Alcotest.(check bool) "cache counters present" true
    (Hashtbl.mem last ("service", "cache_misses"))

(* -- the disabled fast path ------------------------------------------------ *)

let test_disabled_allocates_nothing () =
  Alcotest.(check bool) "tracing is off" false (Trace.enabled ());
  let w0 = Gc.minor_words () in
  for i = 0 to 4999 do
    Trace.counter ~cat:"t" "noop" i;
    Trace.instant ~cat:"t" "noop";
    Trace.span_begin ~cat:"t" "noop";
    Trace.span_end ~cat:"t" "noop"
  done;
  let dw = Gc.minor_words () -. w0 in
  (* a few words of slack for the Gc sampling itself; a single word per
     emission would show as >= 20000 *)
  Alcotest.(check bool)
    (Printf.sprintf "disabled emission allocated %.0f minor words" dw)
    true (dw < 100.0)

let test_timed_measures_when_disabled () =
  Alcotest.(check bool) "tracing is off" false (Trace.enabled ());
  let x, ms = Trace.timed ~cat:"t" "work" (fun () -> 7) in
  Alcotest.(check int) "value passed through" 7 x;
  Alcotest.(check bool) "elapsed measured" true (ms >= 0.0)

let () =
  Alcotest.run "trace"
    [
      ( "json",
        [ Alcotest.test_case "parse_json" `Quick test_parse_json ] );
      ( "round-trip",
        [
          Alcotest.test_case "emit and parse back" `Quick test_round_trip;
          Alcotest.test_case "span ends on exception" `Quick
            test_span_end_on_exception;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "4-domain batch stream invariants" `Quick
            test_concurrent_batch_stream;
        ] );
      ( "disabled path",
        [
          Alcotest.test_case "no allocation" `Quick
            test_disabled_allocates_nothing;
          Alcotest.test_case "timed still measures" `Quick
            test_timed_measures_when_disabled;
        ] );
    ]
