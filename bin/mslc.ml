(* mslc: the command-line driver of the toolkit.

     mslc compile -l yalll -m hp3 prog.yll       compile, print the listing
     mslc run -l simpl -m h1 prog.simpl          compile and execute
     mslc lint -l simpl -m h1 prog.simpl         compile and statically audit
     mslc verify prog.sstar                      discharge S* proof obligations
     mslc machines                               list machine models
     mslc matrix                                 print the survey's language matrix
     mslc experiments [name ...]                 regenerate experiment tables
     mslc batch jobs.manifest                    batch-compile through the service
     mslc stats trace.jsonl                      summarize a recorded trace
     mslc serve --socket /tmp/mslc.sock          persistent compile daemon
     mslc connect --socket ... compile ...       one request to a running daemon

   Exit codes, uniformly: 0 = success, 1 = the requested check failed
   (lint findings, unproved S* obligations, failed batch jobs,
   non-termination within the fuel budget), 2 = the input could not be
   processed at all (parse/compile errors). *)

open Cmdliner
module Machines = Msl_machine.Machines
module Masm = Msl_machine.Masm
module Sim = Msl_machine.Sim
module Desc = Msl_machine.Desc
module Encode = Msl_machine.Encode
module Compaction = Msl_mir.Compaction
module Diag = Msl_util.Diag
module Trace = Msl_util.Trace
module Core = Msl_core

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Every compiler failure prints as a structured, source-located finding
   and exits 2: exit 1 is reserved for "the program was processed and the
   requested check failed".  The firewall in [Toolkit.capture] extends
   the same discipline to unexpected exceptions — a driver bug or a
   pathological input renders as an error[internal] finding instead of
   an uncaught-exception dump. *)
let handle_diag f =
  match Core.Toolkit.capture f with
  | Ok v -> v
  | Error d ->
      Fmt.epr "%a@." Msl_mir.Diag.pp_compiler_error d;
      exit 2
  (* our reader went away (e.g. `mslc batch ... | head`): stop quietly —
     with SIGPIPE ignored this surfaces as EPIPE on a write, and it is
     the reader's verdict that counts, not ours.  The at_exit flushers
     would hit the same EPIPE and turn the quiet exit into an uncaught
     exception, so point stdout at /dev/null first. *)
  | exception e when Core.Toolkit.is_broken_pipe e ->
      (try
         let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
         Unix.dup2 devnull Unix.stdout;
         Unix.close devnull
       with Unix.Unix_error _ -> ());
      exit 0

(* A per-job batch line already leads with an "error" tag, so the
   finding is rendered without repeating the severity. *)
let pp_job_error ppf d =
  let f = Msl_mir.Diag.of_compiler_error d in
  match f.Msl_mir.Diag.f_loc with
  | Msl_mir.Diag.L_none ->
      Fmt.pf ppf "[%s] %s" f.Msl_mir.Diag.f_code f.Msl_mir.Diag.f_message
  | loc ->
      Fmt.pf ppf "[%s] %a: %s" f.Msl_mir.Diag.f_code Msl_mir.Diag.pp_location
        loc f.Msl_mir.Diag.f_message

let positive_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some _ -> Error (`Msg "must be at least 1")
    | None -> Error (`Msg (Printf.sprintf "expected an integer, got %S" s))
  in
  Arg.conv (parse, Fmt.int)

let trace_arg =
  let doc =
    "Write a Chrome-trace-event JSONL trace of this invocation to $(docv) \
     (load it in Perfetto, or summarize it with $(b,mslc stats)); see \
     DESIGN.md for the event schema."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

(* Tracing stays on until process exit: enable_file registers an at_exit
   flush/close, so the trace survives the driver's explicit exits. *)
let setup_trace = Option.iter Trace.enable_file

let lang_arg =
  let doc = "Source language: simpl, empl, sstar or yalll." in
  Arg.(
    required
    & opt (some (enum [ ("simpl", Core.Toolkit.Simpl); ("empl", Core.Toolkit.Empl);
                        ("sstar", Core.Toolkit.Sstar); ("yalll", Core.Toolkit.Yalll) ]))
        None
    & info [ "l"; "language" ] ~docv:"LANG" ~doc)

let machine_arg =
  let doc = "Target machine: h1, hp3, v11 or b17." in
  Arg.(
    value
    & opt string "hp3"
    & info [ "m"; "machine" ] ~docv:"MACHINE" ~doc)

let machine_file_arg =
  let doc =
    "Target a user machine: elaborate the .mdesc description at $(docv) \
     instead of a shipped machine (overrides $(b,--machine))."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "machine-file" ] ~docv:"PATH" ~doc)

(* every command that targets a machine resolves it the same way:
   --machine-file wins, otherwise the named registry entry *)
let resolve_machine machine = function
  | Some path -> Machines.load_file path
  | None -> Machines.get machine

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

let opt_arg =
  let doc =
    "Optimization level: 0 disables the machine-independent MIR optimizer, \
     1 (the default) enables it, 2 additionally runs the proof-gated \
     post-compaction superoptimizer (every rewrite carries a symbolic \
     equivalence proof; see $(b,--superopt))."
  in
  let level =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 0 -> Ok n
      | Some _ -> Error (`Msg "must be non-negative")
      | None -> Error (`Msg (Printf.sprintf "expected an integer, got %S" s))
    in
    Arg.conv (parse, Fmt.int)
  in
  Arg.(value & opt level 1 & info [ "O" ] ~docv:"LEVEL" ~doc)

let time_passes_arg =
  let doc = "Print the wall-clock time of every pipeline pass." in
  Arg.(value & flag & info [ "time-passes" ] ~doc)

let dump_after_arg =
  let doc =
    "Dump the MIR after the named pass (see $(b,--time-passes) for the pass \
     names).  Repeatable."
  in
  let pass =
    let parse s =
      if List.mem s Msl_mir.Pipeline.pass_names then Ok s
      else
        Error
          (`Msg
             (Printf.sprintf "unknown pass %S (expected one of: %s)" s
                (String.concat ", " Msl_mir.Pipeline.pass_names)))
    in
    Arg.conv (parse, Fmt.string)
  in
  Arg.(value & opt_all pass [] & info [ "dump-after" ] ~docv:"PASS" ~doc)

let algo_arg =
  let doc =
    "Compaction algorithm: sequential, fcfs, critical-path or optimal \
     (branch-and-bound)."
  in
  Arg.(
    value
    & opt
        (enum
           [ ("sequential", Compaction.Sequential); ("fcfs", Compaction.Fcfs);
             ("critical-path", Compaction.Critical_path);
             ("optimal", Compaction.Optimal) ])
        Compaction.Critical_path
    & info [ "algo" ] ~docv:"ALGO" ~doc)

let bb_budget_arg =
  let doc =
    "Branch-and-bound node budget per basic block for $(b,--algo optimal).  \
     A block that exhausts it falls back to the critical-path schedule and \
     a warning is printed (the result is still correct, possibly wider)."
  in
  Arg.(
    value
    & opt positive_int Compaction.default_node_budget
    & info [ "bb-budget" ] ~docv:"NODES" ~doc)

let superopt_arg =
  let doc =
    "Run the post-compaction window superoptimizer at any $(b,-O) level: \
     short windows spanning block seams are re-packed, gotos folded and \
     branches inverted, each rewrite accepted only when symbolically \
     proved equivalent (implied by $(b,-O 2))."
  in
  Arg.(value & flag & info [ "superopt" ] ~doc)

let options_of ?(superopt = false) opt_level algo bb_budget =
  {
    Msl_mir.Pipeline.default_options with
    Msl_mir.Pipeline.opt_level;
    algo;
    bb_budget;
    superopt;
  }

let warn_inexact (c : Core.Toolkit.compiled) =
  let n = c.Core.Toolkit.c_inexact_blocks in
  if n > 0 then
    Fmt.epr
      "mslc: warning: %d block%s hit the branch-and-bound node budget; the \
       schedule may be wider than optimal (raise --bb-budget)@."
      n
      (if n = 1 then "" else "s")

let observe_of_dumps dumps =
  if dumps = [] then None
  else
    Some
      (fun pass p ->
        if List.mem pass dumps then
          Fmt.pr "; MIR after %s@.%a@." pass Msl_mir.Mir.pp p)

let print_timings (c : Core.Toolkit.compiled) =
  Fmt.pr "; pass timings@.%a" Msl_mir.Passmgr.pp_timings
    c.Core.Toolkit.c_timings

(* Only prints when the pass ran (-O 2 / --superopt), so default
   listings stay byte-identical. *)
let print_superopt (c : Core.Toolkit.compiled) =
  match c.Core.Toolkit.c_superopt with
  | None -> ()
  | Some s ->
      Fmt.pr "; superopt: %d windows, %d rewrites, %d words saved@."
        s.Msl_mir.Superopt.s_windows s.Msl_mir.Superopt.s_accepted
        s.Msl_mir.Superopt.s_words_saved

let miscompile_of_spec spec =
  match String.index_opt spec ':' with
  | None ->
      Diag.error Diag.Parsing "expected KIND:SEED, got %S (kinds: %s)" spec
        (String.concat ", "
           (List.map Core.Workloads.miscompile_name
              Core.Workloads.all_miscompiles))
  | Some i -> (
      let k = String.sub spec 0 i in
      let s = String.sub spec (i + 1) (String.length spec - i - 1) in
      let kind =
        match
          List.find_opt
            (fun m -> Core.Workloads.miscompile_name m = k)
            Core.Workloads.all_miscompiles
        with
        | Some m -> m
        | None ->
            Diag.error Diag.Parsing "unknown miscompile kind %S (kinds: %s)" k
              (String.concat ", "
                 (List.map Core.Workloads.miscompile_name
                    Core.Workloads.all_miscompiles))
      in
      match int_of_string_opt s with
      | Some seed -> (kind, seed)
      | None -> Diag.error Diag.Parsing "expected an integer seed, got %S" s)

let compile_cmd =
  let validate_arg =
    let doc =
      "Run the translation validator over every lowered block: \
       symbolically prove the compacted microcode equivalent to its \
       pre-compaction schedule (see DESIGN.md).  Prints one finding per \
       REFUTED or UNKNOWN block and a summary line; exits 1 on any \
       refutation."
    in
    Arg.(value & flag & info [ "validate" ] ~doc)
  in
  let tv_inject_arg =
    let doc =
      "Validator testing hook: after compiling, inject the seeded \
       miscompile $(docv) (one of swap-dep, drop-word, retarget, \
       perturb-operand, then a colon and an integer seed) into the \
       compiled program and validate the honest program against the \
       mutant — which must exit 1 (refuted) whenever an observable \
       mutation site exists."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "tv-inject" ] ~docv:"KIND:SEED" ~doc)
  in
  let run lang machine machine_file file opt algo bb_budget superopt trace
      time_passes dumps validate tv_inject =
    setup_trace trace;
    handle_diag (fun () ->
        let d = resolve_machine machine machine_file in
        let tv_inject = Option.map miscompile_of_spec tv_inject in
        let artifacts = ref [] in
        let capture =
          if validate then Some (fun a -> artifacts := a :: !artifacts)
          else None
        in
        let rewrites = ref [] in
        let superopt_capture =
          if validate then Some (fun rw -> rewrites := rw :: !rewrites)
          else None
        in
        let c =
          Core.Toolkit.compile
            ~options:(options_of ~superopt opt algo bb_budget)
            ?observe:(observe_of_dumps dumps) ?capture ?superopt_capture lang
            d (read_file file)
        in
        warn_inexact c;
        print_string (Masm.print d c.Core.Toolkit.c_insts);
        Fmt.pr "; %d words, %d microoperations, %d control-store bits@."
          c.Core.Toolkit.c_words c.Core.Toolkit.c_ops c.Core.Toolkit.c_bits;
        print_superopt c;
        if time_passes then print_timings c;
        let failed = ref false in
        let report (r : Msl_mir.Tv.result) =
          List.iter
            (fun f -> Fmt.pr "%a@." Msl_mir.Diag.pp_finding f)
            r.Msl_mir.Tv.v_findings;
          Fmt.pr "; validate: %a@." Msl_mir.Tv.pp_summary r;
          if r.Msl_mir.Tv.v_refuted > 0 then failed := true
        in
        if validate then begin
          (* the artifacts prove compaction against selection; each
             superopt rewrite then carries its own proof — replay both
             halves and the composition covers the emitted program *)
          report (Msl_mir.Tv.validate_artifacts d (List.rev !artifacts));
          let bad =
            List.filter
              (fun rw -> Msl_mir.Superopt.replay d rw <> Msl_mir.Tv.Validated)
              (List.rev !rewrites)
          in
          List.iter
            (fun (rw : Msl_mir.Superopt.rewrite) ->
              failed := true;
              Fmt.pr
                "error[superopt-replay] block %s: %s rewrite did not replay \
                 Validated@."
                rw.Msl_mir.Superopt.rw_label
                (Msl_mir.Superopt.kind_name rw.Msl_mir.Superopt.rw_kind))
            bad;
          if !rewrites <> [] && bad = [] then
            Fmt.pr "; superopt: %d rewrites replayed, all proved@."
              (List.length !rewrites)
        end;
        (match tv_inject with
        | None -> ()
        | Some (kind, seed) -> (
            match
              Core.Workloads.inject_miscompile d ~seed kind
                c.Core.Toolkit.c_insts
            with
            | None ->
                Fmt.pr
                  "; tv-inject: no observable %s site in this program@."
                  (Core.Workloads.miscompile_name kind)
            | Some (mutant, _witness) ->
                report
                  (Msl_mir.Tv.validate_program d
                     ~labels:c.Core.Toolkit.c_labels
                     ~reference:c.Core.Toolkit.c_insts ~candidate:mutant)));
        if !failed then exit 1)
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a program and print its microcode")
    Term.(
      const run $ lang_arg $ machine_arg $ machine_file_arg $ file_arg
      $ opt_arg $ algo_arg $ bb_budget_arg $ superopt_arg $ trace_arg
      $ time_passes_arg $ dump_after_arg $ validate_arg $ tv_inject_arg)

let fuel_arg =
  let doc =
    "Execution budget in microinstruction steps; a program still running \
     after $(docv) steps is reported as non-terminating (exit 1)."
  in
  Arg.(value & opt positive_int 2_000_000 & info [ "fuel" ] ~docv:"STEPS" ~doc)

let engine_arg =
  let doc =
    "Simulation engine: compiled (the default — translate the control \
     store to closures once, then execute) or interp (the cycle-accurate \
     reference interpreter).  Both produce identical architectural \
     state; the differential test oracle holds them to it."
  in
  Arg.(
    value
    & opt
        (enum
           [ ("compiled", Core.Toolkit.Compiled);
             ("interp", Core.Toolkit.Interp) ])
        Core.Toolkit.Compiled
    & info [ "engine" ] ~docv:"ENGINE" ~doc)

let run_cmd =
  let run lang machine machine_file file opt algo bb_budget superopt trace
      fuel engine =
    setup_trace trace;
    handle_diag (fun () ->
        let d = resolve_machine machine machine_file in
        let c =
          Core.Toolkit.compile
            ~options:(options_of ~superopt opt algo bb_budget)
            lang d (read_file file)
        in
        warn_inexact c;
        match Core.Toolkit.run_status ~engine ~fuel c with
        | sim, Sim.Out_of_fuel ->
            (* the program compiled fine but failed the termination check:
               that is exit 1 territory, with the state a non-terminating
               microprogram needs shown — not a bare exit-2 diagnostic *)
            Fmt.epr
              "mslc: program did not halt within %d steps (pc=%d, %d \
               cycles, %d microinstructions executed)@."
              fuel (Sim.pc sim) (Sim.cycles sim) (Sim.insts_executed sim);
            exit 1
        | sim, Sim.Halted ->
            Fmt.pr "halted after %d cycles (%d microinstructions executed)@."
              (Sim.cycles sim) (Sim.insts_executed sim);
            List.iter
              (fun (r : Desc.reg) ->
                let v = Sim.get_reg_id sim r.Desc.r_id in
                if not (Msl_bitvec.Bitvec.is_zero v) then
                  Fmt.pr "  %-6s = %a@." r.Desc.r_name Msl_bitvec.Bitvec.pp v)
              (Desc.regs d))
  in
  Cmd.v (Cmd.info "run" ~doc:"Compile and execute a program")
    Term.(
      const run $ lang_arg $ machine_arg $ machine_file_arg $ file_arg
      $ opt_arg $ algo_arg $ bb_budget_arg $ superopt_arg $ trace_arg
      $ fuel_arg $ engine_arg)

let lint_cmd =
  let format_arg =
    let doc = "Report format: human, json or sexp." in
    Arg.(
      value
      & opt (enum [ ("human", `Human); ("json", `Json); ("sexp", `Sexp) ]) `Human
      & info [ "format" ] ~docv:"FORMAT" ~doc)
  in
  let budget_arg =
    let doc =
      "Also check the worst-case microcycle gap between interrupt polls \
       against $(docv)."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "latency-budget" ] ~docv:"CYCLES" ~doc)
  in
  let pedantic_arg =
    let doc =
      "Also report legal same-phase write/read register sharing (as info)."
    in
    Arg.(value & flag & info [ "pedantic" ] ~doc)
  in
  let poll_arg =
    let doc =
      "Compile with interrupt poll points on loop back edges before \
       analyzing (the manifest's poll=on)."
    in
    Arg.(value & flag & info [ "poll" ] ~doc)
  in
  let run lang machine machine_file file opt algo bb_budget superopt trace
      format budget pedantic poll =
    setup_trace trace;
    handle_diag (fun () ->
        let d = resolve_machine machine machine_file in
        (* the first observed pass is "validate": the frontend's own MIR,
           before any transformation — lint findings point at what the
           programmer wrote.  S* never calls observe (no MIR pipeline). *)
        let mir = ref None in
        let observe _pass p = if !mir = None then mir := Some p in
        let options =
          { (options_of ~superopt opt algo bb_budget) with
            Msl_mir.Pipeline.poll }
        in
        let c =
          Core.Toolkit.compile ~options ~observe lang d (read_file file)
        in
        warn_inexact c;
        let config =
          { Msl_mir.Lint.latency_budget = budget; pedantic }
        in
        let findings =
          Msl_mir.Lint.run ~config ?mir:!mir
            ~labels:c.Core.Toolkit.c_labels d c.Core.Toolkit.c_insts
        in
        let errors = Msl_mir.Diag.errors findings in
        (match format with
        | `Human ->
            List.iter
              (fun f -> Fmt.pr "%a@." Msl_mir.Diag.pp_finding f)
              findings;
            let warnings = Msl_mir.Diag.warnings findings in
            if findings = [] then
              Fmt.pr "%s: %d words on %s: no findings@." file
                c.Core.Toolkit.c_words d.Desc.d_name
            else
              Fmt.pr "%s: %d error%s, %d warning%s@." file
                (List.length errors)
                (if List.length errors = 1 then "" else "s")
                (List.length warnings)
                (if List.length warnings = 1 then "" else "s")
        | `Json ->
            print_endline
              (Msl_mir.Diag.report_json ~machine:d.Desc.d_name findings)
        | `Sexp ->
            print_endline
              (Msl_mir.Diag.report_sexp ~machine:d.Desc.d_name findings));
        if errors <> [] then exit 1)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Compile a program and audit the result with the independent \
          static analyzer (exit 1 on any error finding)")
    Term.(
      const run $ lang_arg $ machine_arg $ machine_file_arg $ file_arg
      $ opt_arg $ algo_arg $ bb_budget_arg $ superopt_arg $ trace_arg
      $ format_arg $ budget_arg $ pedantic_arg $ poll_arg)

let verify_cmd =
  let run machine machine_file file =
    handle_diag (fun () ->
        let d = resolve_machine machine machine_file in
        let prog = Msl_sstar.Parser.parse (read_file file) in
        let report = Msl_sstar.Verify.verify d prog in
        Fmt.pr "%a@." Msl_sstar.Verify.pp_report report;
        if not (Msl_sstar.Verify.ok report) then exit 1)
  in
  Cmd.v (Cmd.info "verify" ~doc:"Discharge the proof obligations of an S* program")
    Term.(const run $ machine_arg $ machine_file_arg $ file_arg)

let encode_cmd =
  let run lang machine machine_file file =
    handle_diag (fun () ->
        let d = resolve_machine machine machine_file in
        let c = Core.Toolkit.compile lang d (read_file file) in
        Fmt.pr "; %s control store, %d-bit words@." d.Msl_machine.Desc.d_name
          (Encode.word_bits d);
        List.iteri
          (fun i inst ->
            let w = Encode.encode_inst d inst in
            (* decode back as a self-check of the ROM image *)
            let back = Encode.decode_inst d w in
            Fmt.pr "%4d: %s  ; %a@." i (Encode.word_to_hex w)
              (Msl_machine.Inst.pp d) back)
          c.Core.Toolkit.c_insts)
  in
  Cmd.v
    (Cmd.info "encode"
       ~doc:"Compile and print the binary control store (hex + disassembly)")
    Term.(const run $ lang_arg $ machine_arg $ machine_file_arg $ file_arg)

let machines_cmd =
  let run () =
    List.iter
      (fun (d : Desc.t) ->
        Fmt.pr "%-4s %2d-bit, %d registers, %d-phase, %3d-bit control word%s@.     %s@."
          d.Desc.d_name d.Desc.d_word
          (Array.length d.Desc.d_regs)
          d.Desc.d_phases (Encode.word_bits d)
          (if d.Desc.d_vertical then " (vertical)" else "")
          d.Desc.d_note)
      Machines.all
  in
  Cmd.v (Cmd.info "machines" ~doc:"List the machine models")
    Term.(const run $ const ())

let matrix_cmd =
  let run () =
    List.iter (fun t -> Msl_util.Tbl.print t; print_newline ()) (Core.Experiments.t1 ())
  in
  Cmd.v (Cmd.info "matrix" ~doc:"Print the survey's language matrix")
    Term.(const run $ const ())

let experiments_cmd =
  let names_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"NAME")
  in
  let run trace names =
    setup_trace trace;
    handle_diag (fun () ->
        let all =
          [ ("t1", fun () -> Core.Experiments.t1 ());
            ("t2", fun () -> [ Core.Experiments.t2 () ]);
            ("t3", fun () -> [ Core.Experiments.t3 () ]);
            ("t4", fun () -> [ Core.Experiments.t4 () ]);
            ("t5", fun () -> [ Core.Experiments.t5 () ]);
            ("t6", fun () -> [ Core.Experiments.t6 () ]);
            ("t7", fun () -> [ Core.Experiments.t7 () ]);
            ("t8", fun () -> [ Core.Experiments.t8 () ]);
            ("f1", fun () -> [ Core.Experiments.f1 () ]);
            ("f2", fun () -> Core.Experiments.f2 ());
            ("a1", fun () -> [ Core.Experiments.a1 () ]);
            ("o1", fun () -> [ Core.Experiments.o1 () ]);
            ("l1", fun () -> [ Core.Experiments.l1 () ]);
            ("m1", fun () -> [ Core.Experiments.m1 () ]);
            ("v1", fun () -> Core.Experiments.v1 ());
            ("r1", fun () -> [ Core.Experiments.r1 () ]);
            ("s4", fun () -> [ Core.Experiments.s4 () ]) ]
        in
        let wanted =
          if names = [] then List.map fst all
          else List.map String.lowercase_ascii names
        in
        List.iter
          (fun n ->
            match List.assoc_opt n all with
            | Some f ->
                List.iter
                  (fun t -> Msl_util.Tbl.print t; print_newline ())
                  (Trace.with_span ~cat:"experiment" n f)
            | None -> Fmt.epr "unknown experiment %S@." n)
          wanted)
  in
  Cmd.v (Cmd.info "experiments" ~doc:"Regenerate the experiment tables")
    Term.(const run $ trace_arg $ names_arg)

let batch_cmd =
  let module Service = Msl_core.Service in
  let manifest_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"MANIFEST")
  in
  let domains_arg =
    let doc = "Worker domains for the fan-out (default: the service default)." in
    Arg.(
      value
      & opt (some positive_int) None
      & info [ "j"; "domains" ] ~docv:"N" ~doc)
  in
  let rounds_arg =
    let doc =
      "Run the batch $(docv) times through the same cache; every round \
       after the first is served warm."
    in
    Arg.(value & opt positive_int 1 & info [ "rounds" ] ~docv:"N" ~doc)
  in
  let cap_arg =
    let doc = "Cache capacity in entries (oldest-inserted evicted beyond it)." in
    Arg.(value & opt positive_int 4096 & info [ "cache-cap" ] ~docv:"N" ~doc)
  in
  let listings_arg =
    let doc = "Print the microcode listing of every successful job." in
    Arg.(value & flag & info [ "listings" ] ~doc)
  in
  let lint_arg =
    let doc =
      "Run the static analyzer on every compiled job and fail jobs with \
       error findings (equivalent to lint=on on every manifest line)."
    in
    Arg.(value & flag & info [ "lint" ] ~doc)
  in
  let diff_arg =
    let doc =
      "Execute every compiled job on both simulation engines and fail \
       jobs whose architectural state diverges (equivalent to diff=on on \
       every manifest line).  The corpus-wide engine gate in CI is this \
       flag over examples/."
    in
    Arg.(value & flag & info [ "diff" ] ~doc)
  in
  let validate_arg =
    let doc =
      "Run the translation validator on every compiled job and fail jobs \
       with REFUTED or UNKNOWN blocks (equivalent to validate=on on \
       every manifest line).  The corpus-wide validate gate in CI is \
       this flag over examples/."
    in
    Arg.(value & flag & info [ "validate" ] ~doc)
  in
  let superopt_batch_arg =
    let doc =
      "Compile every job with the proof-gated window superoptimizer \
       (equivalent to superopt=on on every manifest line).  The \
       corpus-wide superopt gate in CI is this flag with \
       $(b,--validate) $(b,--diff) over examples/."
    in
    Arg.(value & flag & info [ "superopt" ] ~doc)
  in
  let cache_dir_arg =
    let doc =
      "Layer a persistent content-addressed result cache under the in-memory \
       one: entries are written atomically to $(docv) (created if missing) \
       and survive process restarts; corrupt or incompatible files fall back \
       to recompilation.  Superopt window searches are memoized in the same \
       directory."
    in
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)
  in
  let nonneg_int =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 0 -> Ok n
      | Some _ -> Error (`Msg "must be non-negative")
      | None -> Error (`Msg (Printf.sprintf "expected an integer, got %S" s))
    in
    Arg.conv (parse, Fmt.int)
  in
  let retries_arg =
    let doc =
      "Retry a job up to $(docv) times after a worker crash (unexpected \
       raise), with exponential backoff and deterministic jitter.  \
       Structured compile errors are never retried."
    in
    Arg.(value & opt nonneg_int 0 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let backoff_arg =
    let doc = "Nominal first retry backoff in milliseconds (doubles per retry)." in
    Arg.(value & opt float 2.0 & info [ "backoff-ms" ] ~docv:"MS" ~doc)
  in
  let deadline_arg =
    let doc =
      "Per-job wall deadline in milliseconds across all attempts; an \
       overrunning job fails with an internal-error diagnostic (overrun is \
       detected between steps, not preempted)."
    in
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"MS" ~doc)
  in
  let keep_going_arg =
    let doc =
      "Whether to keep compiling after a job fails (default true).  \
       $(b,--keep-going=false) is fail-fast: jobs not yet started when the \
       first failure lands are canceled."
    in
    Arg.(value & opt bool true & info [ "keep-going" ] ~docv:"BOOL" ~doc)
  in
  let inject_raise_arg =
    let doc =
      "Fault injection: probability in [0,1] that a compile attempt raises \
       (deterministic in --inject-seed, the cache key and the attempt \
       number).  For the R1 experiment and the CI fault gate."
    in
    Arg.(value & opt float 0.0 & info [ "inject-raise" ] ~docv:"P" ~doc)
  in
  let inject_delay_arg =
    let doc = "Fault injection: probability that an attempt sleeps first." in
    Arg.(value & opt float 0.0 & info [ "inject-delay" ] ~docv:"P" ~doc)
  in
  let inject_delay_ms_arg =
    let doc = "Length of an injected delay in milliseconds." in
    Arg.(value & opt float 5.0 & info [ "inject-delay-ms" ] ~docv:"MS" ~doc)
  in
  let inject_seed_arg =
    let doc = "Seed for the deterministic fault-injection draws." in
    Arg.(value & opt int 1 & info [ "inject-seed" ] ~docv:"N" ~doc)
  in
  let run manifest domains rounds cap listings lint diff validate superopt
      cache_dir retries backoff_ms deadline keep_going inject_raise
      inject_delay inject_delay_ms inject_seed trace =
    setup_trace trace;
    handle_diag (fun () ->
        let jobs =
          Service.parse_manifest ~file:manifest ~load:read_file
            (read_file manifest)
        in
        let jobs =
          if lint then List.map (fun j -> { j with Service.j_lint = true }) jobs
          else jobs
        in
        let jobs =
          if diff then List.map (fun j -> { j with Service.j_diff = true }) jobs
          else jobs
        in
        let jobs =
          if validate then
            List.map (fun j -> { j with Service.j_validate = true }) jobs
          else jobs
        in
        let jobs =
          if superopt then
            List.map
              (fun j ->
                { j with
                  Service.j_options =
                    { j.Service.j_options with Msl_mir.Pipeline.superopt = true }
                })
              jobs
          else jobs
        in
        let policy =
          {
            Service.p_retries = retries;
            p_backoff_ms = backoff_ms;
            p_deadline_ms = deadline;
            p_keep_going = keep_going;
          }
        in
        let faults =
          {
            Service.f_seed = inject_seed;
            f_raise = inject_raise;
            f_delay = inject_delay;
            f_delay_ms = inject_delay_ms;
          }
        in
        let service = Service.create ?domains ~capacity:cap ?cache_dir () in
        let failed = ref false in
        for round = 1 to rounds do
          if rounds > 1 then Fmt.pr "== round %d@." round;
          let outcomes = Service.run_batch ~policy ~faults service jobs in
          Array.iter
            (fun (o : Service.outcome) ->
              let id = o.Service.o_job.Service.j_id in
              match o.Service.o_result with
              | Ok (c, listing) ->
                  Fmt.pr "ok    %-28s %4d words, %4d ops%s@." id
                    c.Core.Toolkit.c_words c.Core.Toolkit.c_ops
                    (if o.Service.o_cached then "  (cached)" else "");
                  if c.Core.Toolkit.c_inexact_blocks > 0 then
                    Fmt.epr
                      "mslc: warning: %s: %d block%s hit the \
                       branch-and-bound node budget (raise bb_budget=)@."
                      id c.Core.Toolkit.c_inexact_blocks
                      (if c.Core.Toolkit.c_inexact_blocks = 1 then ""
                       else "s");
                  if listings then print_string listing
              | Error d ->
                  failed := true;
                  Fmt.pr "error %-28s %a@." id pp_job_error d)
            outcomes
        done;
        let s = Service.stats service in
        Fmt.pr
          "-- %d jobs: %d hits, %d misses, %d evictions, %d errors; %d \
           entries cached@."
          s.Service.st_jobs s.Service.st_hits s.Service.st_misses
          s.Service.st_evictions s.Service.st_errors s.Service.st_entries;
        (* extra summary lines only where the new machinery is in play,
           so the default batch output stays byte-identical *)
        if cache_dir <> None then
          Fmt.pr "-- disk cache: %d hits, %d stores@." s.Service.st_disk_hits
            s.Service.st_disk_stores;
        if
          s.Service.st_retries > 0 || s.Service.st_internal > 0
          || s.Service.st_deadline > 0 || s.Service.st_canceled > 0
        then
          Fmt.pr
            "-- faults: %d internal errors, %d retries, %d deadline \
             failures, %d canceled@."
            s.Service.st_internal s.Service.st_retries s.Service.st_deadline
            s.Service.st_canceled;
        if !failed then exit 1)
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Batch-compile a manifest of jobs through the content-addressed \
          compilation service")
    Term.(
      const run $ manifest_arg $ domains_arg $ rounds_arg $ cap_arg
      $ listings_arg $ lint_arg $ diff_arg $ validate_arg
      $ superopt_batch_arg $ cache_dir_arg $ retries_arg $ backoff_arg
      $ deadline_arg $ keep_going_arg $ inject_raise_arg $ inject_delay_arg
      $ inject_delay_ms_arg $ inject_seed_arg $ trace_arg)

(* -- stats: summarize a recorded trace --------------------------------- *)

(* Aggregates computed from a parsed trace: span durations by matching
   B/E per domain (spans nest per tid, so a stack suffices), the final
   value of each counter, and instant-event counts. *)
let summarize events =
  let spans = Hashtbl.create 16 in (* (cat,name) -> count, total_us, max_us *)
  let stacks = Hashtbl.create 8 in (* tid -> ((cat,name) * ts) stack *)
  let counters = Hashtbl.create 16 in (* (cat,name) -> last value *)
  let instants = Hashtbl.create 16 in (* (cat,name) -> count *)
  List.iter
    (fun (e : Trace.event) ->
      let key = (e.Trace.ev_cat, e.Trace.ev_name) in
      match e.Trace.ev_ph with
      | "B" ->
          let st =
            Option.value ~default:[] (Hashtbl.find_opt stacks e.Trace.ev_tid)
          in
          Hashtbl.replace stacks e.Trace.ev_tid ((key, e.Trace.ev_ts) :: st)
      | "E" -> (
          match Hashtbl.find_opt stacks e.Trace.ev_tid with
          | Some ((k, t0) :: rest) ->
              Hashtbl.replace stacks e.Trace.ev_tid rest;
              let dur = e.Trace.ev_ts -. t0 in
              let c, tot, mx =
                Option.value ~default:(0, 0., 0.) (Hashtbl.find_opt spans k)
              in
              Hashtbl.replace spans k (c + 1, tot +. dur, Float.max mx dur)
          | _ -> () (* unbalanced end: count nothing, the checker flags it *))
      | "C" ->
          let v =
            match List.assoc_opt "value" e.Trace.ev_args with
            | Some (Trace.J_num v) -> v
            | _ -> 0.
          in
          Hashtbl.replace counters key v
      | _ ->
          Hashtbl.replace instants key
            (1 + Option.value ~default:0 (Hashtbl.find_opt instants key)))
    events;
  let sorted h f =
    Hashtbl.fold (fun k v acc -> f k v :: acc) h [] |> List.sort compare
  in
  ( sorted spans (fun (c, n) (cnt, tot, mx) -> (c, n, cnt, tot, mx)),
    sorted counters (fun (c, n) v -> (c, n, v)),
    sorted instants (fun (c, n) cnt -> (c, n, cnt)) )

let stats_cmd =
  let trace_file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE")
  in
  let format_arg =
    let doc = "Report format: human or json." in
    Arg.(
      value
      & opt (enum [ ("human", `Human); ("json", `Json) ]) `Human
      & info [ "format" ] ~docv:"FORMAT" ~doc)
  in
  (* An unreadable, truncated (mid-write) or empty trace is a failed
     check on the trace file, reported as a structured diagnostic with
     exit 1 — never a raw parser exception. *)
  let trace_error msg =
    Fmt.epr "%a@."
      Msl_mir.Diag.pp_compiler_error
      { Diag.phase = Diag.Parsing; loc = Msl_util.Loc.dummy; message = msg };
    exit 1
  in
  let run file format =
    match Trace.read_events file with
    | Error msg -> trace_error msg
    | Ok [] -> trace_error (file ^ ": empty trace (no events)")
    | Ok events -> (
        let spans, counters, instants = summarize events in
        match format with
        | `Human ->
            Fmt.pr "%s: %d events@." file (List.length events);
            if spans <> [] then Fmt.pr "spans:@.";
            List.iter
              (fun (cat, name, cnt, tot, mx) ->
                Fmt.pr "  %-32s %6d  total %10.1f us  max %10.1f us@."
                  (cat ^ "/" ^ name) cnt tot mx)
              spans;
            if counters <> [] then Fmt.pr "counters (final values):@.";
            List.iter
              (fun (cat, name, v) ->
                Fmt.pr "  %-32s %.0f@." (cat ^ "/" ^ name) v)
              counters;
            if instants <> [] then Fmt.pr "instants:@.";
            List.iter
              (fun (cat, name, cnt) ->
                Fmt.pr "  %-32s %6d@." (cat ^ "/" ^ name) cnt)
              instants
        | `Json ->
            let buf = Buffer.create 1024 in
            let item first fmt =
              if not first then Buffer.add_char buf ',';
              Printf.ksprintf (Buffer.add_string buf) fmt
            in
            Printf.ksprintf (Buffer.add_string buf) "{\"events\":%d"
              (List.length events);
            Buffer.add_string buf ",\"spans\":[";
            List.iteri
              (fun i (cat, name, cnt, tot, mx) ->
                item (i = 0)
                  "{\"cat\":%S,\"name\":%S,\"count\":%d,\"total_us\":%.1f,\"max_us\":%.1f}"
                  cat name cnt tot mx)
              spans;
            Buffer.add_string buf "],\"counters\":[";
            List.iteri
              (fun i (cat, name, v) ->
                item (i = 0) "{\"cat\":%S,\"name\":%S,\"value\":%.0f}" cat
                  name v)
              counters;
            Buffer.add_string buf "],\"instants\":[";
            List.iteri
              (fun i (cat, name, cnt) ->
                item (i = 0) "{\"cat\":%S,\"name\":%S,\"count\":%d}" cat name
                  cnt)
              instants;
            Buffer.add_string buf "]}";
            print_endline (Buffer.contents buf))
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Summarize a JSONL trace recorded with --trace (span totals, \
          final counter values, instant-event counts)")
    Term.(const run $ trace_file_arg $ format_arg)

(* -- serve / connect: the persistent compile daemon and its client ----- *)

let socket_arg =
  let doc = "Path of the daemon's Unix-domain socket." in
  Arg.(
    required & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let module Serve = Msl_core.Serve in
  let domains_arg =
    let doc = "Worker domains compiling concurrently (default: up to 4)." in
    Arg.(
      value & opt (some positive_int) None & info [ "domains"; "j" ] ~docv:"N" ~doc)
  in
  let queue_cap_arg =
    let doc =
      "Global bound on admitted-but-unstarted jobs across all clients; a \
       request that would exceed it blocks its own connection until a \
       worker frees space (pushback, not load shedding)."
    in
    Arg.(value & opt positive_int 64 & info [ "queue-cap" ] ~docv:"N" ~doc)
  in
  let client_cap_arg =
    let doc =
      "Per-client bound on admitted-and-unanswered requests; a client \
       flooding past it (or not reading its responses) blocks only itself."
    in
    Arg.(value & opt positive_int 16 & info [ "client-cap" ] ~docv:"N" ~doc)
  in
  let cap_arg =
    let doc = "In-memory cache capacity (entries)." in
    Arg.(value & opt positive_int 4096 & info [ "capacity" ] ~docv:"N" ~doc)
  in
  let cache_dir_arg =
    let doc =
      "Persistent content-addressed cache directory shared by every client \
       (created if missing; stale tmp files from crashed writers are swept \
       at startup)."
    in
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)
  in
  let run socket domains queue_cap client_cap cap cache_dir trace =
    setup_trace trace;
    handle_diag (fun () ->
        let cfg =
          {
            Serve.sc_socket = socket;
            sc_domains = domains;
            sc_queue_cap = queue_cap;
            sc_client_cap = client_cap;
            sc_capacity = cap;
            sc_cache_dir = cache_dir;
            sc_policy = Msl_core.Service.default_policy;
          }
        in
        let srv =
          try Serve.start cfg
          with Unix.Unix_error (Unix.EADDRINUSE, _, _) ->
            Msl_util.Diag.error Msl_util.Diag.Internal
              "socket %s is in use by a live daemon (connect to it, or \
               shut it down first)"
              socket
        in
        Fmt.epr "mslc serve: listening on %s (%d domains)@." socket
          (Msl_core.Service.domains (Serve.service srv));
        Serve.wait srv)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the toolkit as a persistent daemon on a Unix-domain socket: \
          many concurrent clients, a shared compile cache, bounded queues \
          with per-client backpressure and round-robin fairness.  The \
          JSONL protocol is documented in DESIGN.md; $(b,mslc connect) is \
          its command-line client.")
    Term.(
      const run $ socket_arg $ domains_arg $ queue_cap_arg $ client_cap_arg
      $ cap_arg $ cache_dir_arg $ trace_arg)

let connect_cmd =
  let module Serve = Msl_core.Serve in
  let op_arg =
    let doc = "Request: compile, lint, run, stats or shutdown." in
    Arg.(
      required
      & pos 0 (some (enum
                       [ ("compile", "compile"); ("lint", "lint");
                         ("run", "run"); ("stats", "stats");
                         ("shutdown", "shutdown") ])) None
      & info [] ~docv:"OP" ~doc)
  in
  let file_pos_arg =
    let doc = "Source file to send (compile/lint/run)." in
    Arg.(value & pos 1 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let lang_str_arg =
    let doc = "Source language: simpl, empl, sstar or yalll." in
    Arg.(
      value & opt (some string) None & info [ "l"; "language" ] ~docv:"LANG" ~doc)
  in
  let listing_arg =
    let doc = "Ask for (and print) the microassembly listing." in
    Arg.(value & flag & info [ "listing" ] ~doc)
  in
  let repeat_arg =
    let doc =
      "Send the job $(docv) times with distinct request ids, pipelined \
       (responses are read concurrently) — a one-flag saturation load."
    in
    Arg.(value & opt positive_int 1 & info [ "repeat" ] ~docv:"N" ~doc)
  in
  let jsonl_arg =
    let doc =
      "Raw protocol mode: forward JSONL request lines from stdin and print \
       raw response lines, one per request (OP and the job flags are \
       ignored)."
    in
    Arg.(value & flag & info [ "jsonl" ] ~doc)
  in
  let engine_str_arg =
    let doc = "Simulation engine for run: interp or compiled." in
    Arg.(value & opt string "compiled" & info [ "engine" ] ~docv:"ENGINE" ~doc)
  in
  let fuel_arg =
    let doc = "Step budget for run." in
    Arg.(value & opt positive_int 2_000_000 & info [ "fuel" ] ~docv:"STEPS" ~doc)
  in
  (* One response line, rendered batch-style.  Returns false when the
     response is an error (drives the exit code). *)
  let print_response line =
    let j name fields = List.assoc_opt name fields in
    let jstr name fields =
      match j name fields with Some (Trace.J_str s) -> Some s | _ -> None
    in
    let jint name fields =
      match j name fields with
      | Some (Trace.J_num f) -> Some (int_of_float f)
      | _ -> None
    in
    let jbool name fields =
      match j name fields with Some (Trace.J_bool b) -> Some b | _ -> None
    in
    match Trace.parse_json line with
    | Ok (Trace.J_obj fields) -> (
        let id = Option.value ~default:"?" (jstr "id" fields) in
        match jbool "ok" fields with
        | Some true -> (
            match Option.value ~default:"" (jstr "op" fields) with
            | "stats" ->
                let g name = Option.value ~default:0 (jint name fields) in
                Fmt.pr
                  "-- serve: %d requests, %d responses, %d errors; queue \
                   peak %d; %d clients@."
                  (g "requests") (g "responses") (g "resp_errors")
                  (g "queue_peak") (g "clients");
                Fmt.pr "-- cache: %d jobs, %d hits, %d misses; %d entries@."
                  (g "jobs") (g "hits") (g "misses") (g "entries");
                true
            | "shutdown" ->
                Fmt.pr "-- shutdown requested@.";
                true
            | _ ->
                let words = Option.value ~default:0 (jint "words" fields) in
                let ops = Option.value ~default:0 (jint "ops" fields) in
                let cached = jbool "cached" fields = Some true in
                let status =
                  match jstr "status" fields with
                  | Some s -> ", " ^ s
                  | None -> ""
                in
                Fmt.pr "ok    %-28s %4d words, %4d ops%s%s@." id words ops
                  status
                  (if cached then "  (cached)" else "");
                (match jstr "listing" fields with
                | Some l -> print_string l
                | None -> ());
                true)
        | _ ->
            Fmt.pr "error %-28s %s@." id
              (Option.value ~default:"malformed response" (jstr "error" fields));
            false)
    | Ok _ | Error _ ->
        Fmt.pr "error %-28s unparseable response: %s@." "?" line;
        false
  in
  (* Send the request lines down one connection while a reader thread
     prints responses as they arrive: pipelined sends against a busy
     daemon would otherwise deadlock with both sides' socket buffers
     full.  Returns the number of error responses. *)
  let exchange conn lines =
    let expected = List.length lines in
    let errors = ref 0 in
    let reader =
      Thread.create
        (fun () ->
          let rec loop n =
            if n < expected then
              match Serve.Client.recv_line conn with
              | Some line ->
                  if not (print_response line) then incr errors;
                  loop (n + 1)
              | None ->
                  Fmt.pr "error: connection closed after %d of %d responses@."
                    n expected;
                  errors := !errors + (expected - n)
          in
          loop 0)
        ()
    in
    List.iter (Serve.Client.send_line conn) lines;
    Thread.join reader;
    !errors
  in
  let run socket op file lang machine opt superopt listing engine fuel repeat
      jsonl =
    handle_diag (fun () ->
        let conn =
          try Serve.Client.connect socket
          with Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) ->
            Msl_util.Diag.error Msl_util.Diag.Internal
              "no daemon is listening on %s (start one with mslc serve)"
              socket
        in
        let finally () = Serve.Client.close conn in
        Fun.protect ~finally (fun () ->
            let errors =
              if jsonl then begin
                let lines = ref [] in
                (try
                   while true do
                     lines := input_line stdin :: !lines
                   done
                 with End_of_file -> ());
                exchange conn (List.rev !lines)
              end
              else
                match op with
                | "stats" | "shutdown" ->
                    exchange conn [ Serve.request ~op ~id:op () ]
                | _ ->
                    let file =
                      match file with
                      | Some f -> f
                      | None ->
                          Msl_util.Diag.error Msl_util.Diag.Parsing
                            "connect %s needs a source FILE" op
                    in
                    let language =
                      match lang with
                      | Some l -> l
                      | None ->
                          Msl_util.Diag.error Msl_util.Diag.Parsing
                            "connect %s needs --language" op
                    in
                    let source = read_file file in
                    let base = Filename.basename file in
                    let lines =
                      List.init repeat (fun k ->
                          let id =
                            if repeat = 1 then
                              Printf.sprintf "%s@%s" base machine
                            else Printf.sprintf "%s@%s#%d" base machine (k + 1)
                          in
                          Serve.request ~op ~id ~language ~machine ~source
                            ~opt ~superopt ~listing ~engine ~fuel ())
                    in
                    exchange conn lines
            in
            if errors > 0 then exit 1))
  in
  Cmd.v
    (Cmd.info "connect"
       ~doc:
         "Send requests to a running $(b,mslc serve) daemon over its \
          Unix-domain socket and print the responses (connection retries \
          cover a daemon still starting up).  Exit 1 if any response \
          reports an error.")
    Term.(
      const run $ socket_arg $ op_arg $ file_pos_arg $ lang_str_arg
      $ machine_arg $ opt_arg $ superopt_arg $ listing_arg $ engine_str_arg
      $ fuel_arg $ repeat_arg $ jsonl_arg)

let () =
  (* `mslc batch … | head` (or a serve client vanishing mid-response)
     must surface as EPIPE on the write, handled per-command — never as
     a fatal SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let info =
    Cmd.info "mslc" ~version:"1.0"
      ~doc:"Microprogramming-language toolkit (Sint 1980 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ compile_cmd; run_cmd; encode_cmd; lint_cmd; verify_cmd;
            machines_cmd; matrix_cmd; experiments_cmd; batch_cmd;
            stats_cmd; serve_cmd; connect_cmd ]))
